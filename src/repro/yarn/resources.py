"""Resource vectors: VCOREs plus memory, as in YARN."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Resource:
    """A logical bundle of resources (paper II-D: "e.g. 4GB RAM and 1 CPU").

    Comparison and arithmetic are component-wise.  The paper controls Apex
    parallelism by setting the number of VCOREs in the YARN configuration,
    which is why VCOREs come first here.
    """

    vcores: int
    memory_mb: int

    def __post_init__(self) -> None:
        if self.vcores < 0 or self.memory_mb < 0:
            raise ValueError(f"resources must be non-negative, got {self}")

    def fits_within(self, other: "Resource") -> bool:
        """Whether this request fits inside ``other``."""
        return self.vcores <= other.vcores and self.memory_mb <= other.memory_mb

    def __add__(self, other: "Resource") -> "Resource":
        return Resource(self.vcores + other.vcores, self.memory_mb + other.memory_mb)

    def __sub__(self, other: "Resource") -> "Resource":
        return Resource(self.vcores - other.vcores, self.memory_mb - other.memory_mb)

    def __str__(self) -> str:
        return f"<{self.vcores} vcores, {self.memory_mb} MB>"
