"""Tests for repro.beam.coders."""

import pytest
from hypothesis import given, strategies as st

from repro.beam.coders import (
    BytesCoder,
    KvCoder,
    PickleCoder,
    StrUtf8Coder,
    VarIntCoder,
    registry_default,
)


class TestCoders:
    def test_bytes_roundtrip(self):
        assert BytesCoder().decode(BytesCoder().encode(b"abc")) == b"abc"

    def test_bytes_rejects_str(self):
        with pytest.raises(TypeError):
            BytesCoder().encode("abc")  # type: ignore[arg-type]

    def test_str_roundtrip(self):
        coder = StrUtf8Coder()
        assert coder.decode(coder.encode("héllo")) == "héllo"

    def test_str_rejects_bytes(self):
        with pytest.raises(TypeError):
            StrUtf8Coder().encode(b"x")  # type: ignore[arg-type]

    def test_varint_roundtrip(self):
        coder = VarIntCoder()
        for value in (0, 1, -1, 2**40, -(2**40)):
            assert coder.decode(coder.encode(value)) == value

    def test_pickle_roundtrip(self):
        coder = PickleCoder()
        value = {"a": [1, 2, (3, 4)]}
        assert coder.decode(coder.encode(value)) == value

    def test_kv_roundtrip(self):
        coder = KvCoder(StrUtf8Coder(), VarIntCoder())
        assert coder.decode(coder.encode(("key", 42))) == ("key", 42)

    def test_registry_picks_sensible_coders(self):
        assert isinstance(registry_default(b"x"), BytesCoder)
        assert isinstance(registry_default("x"), StrUtf8Coder)
        assert isinstance(registry_default(3), VarIntCoder)
        assert isinstance(registry_default(("k", 1)), KvCoder)
        assert isinstance(registry_default([1, 2]), PickleCoder)
        assert isinstance(registry_default(True), PickleCoder)

    @given(st.text())
    def test_str_roundtrip_property(self, value):
        coder = StrUtf8Coder()
        assert coder.decode(coder.encode(value)) == value

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_varint_roundtrip_property(self, value):
        coder = VarIntCoder()
        assert coder.decode(coder.encode(value)) == value

    @given(st.tuples(st.text(), st.integers(-(2**31), 2**31)))
    def test_kv_roundtrip_property(self, kv):
        coder = KvCoder(StrUtf8Coder(), VarIntCoder())
        assert coder.decode(coder.encode(kv)) == kv
