"""Tests for the KafkaIO transforms (expansion structure and semantics)."""

import pytest

import repro.beam as beam
from repro.beam.errors import BeamError
from repro.beam.io.kafka import (
    KafkaRead,
    KafkaRecord,
    KafkaWrite,
    ReadFromKafka,
    WriteToKafka,
    read,
    write,
)
from repro.broker import Producer


@pytest.fixture
def topic(broker, admin):
    admin.create_topic("t")
    with Producer(broker) as producer:
        producer.send_values("t", ["v0", "v1", "v2"])
    return "t"


class TestReadExpansion:
    def test_plain_read_produces_records_with_metadata(self, broker, topic):
        p = beam.Pipeline()
        pcoll = p | read(broker, topic)
        result = p.run()
        records = result.outputs[pcoll.producer.full_label]
        assert all(isinstance(r, KafkaRecord) for r in records)
        assert [r.value for r in records] == ["v0", "v1", "v2"]
        assert [r.offset for r in records] == [0, 1, 2]

    def test_without_metadata_yields_kv_pairs(self, broker, topic):
        p = beam.Pipeline()
        pcoll = p | read(broker, topic).without_metadata()
        result = p.run()
        assert result.outputs[pcoll.producer.full_label] == [
            (None, "v0"),
            (None, "v1"),
            (None, "v2"),
        ]

    def test_without_metadata_adds_a_pardo_node(self, broker, topic):
        plain = beam.Pipeline()
        plain | read(broker, topic)
        chained = beam.Pipeline()
        chained | read(broker, topic).without_metadata()
        # the paper: "The first ParDo represents calling withoutMetadata()"
        assert len(chained.applied) == len(plain.applied) + 1

    def test_read_must_be_root(self, broker, topic):
        p = beam.Pipeline()
        pcoll = p | beam.Create([1])
        with pytest.raises(BeamError):
            pcoll | KafkaRead(broker, topic)

    def test_bounded_flag_propagates(self, broker, topic):
        p = beam.Pipeline()
        pcoll = p | read(broker, topic, bounded=False)
        assert not pcoll.is_bounded

    def test_record_kv_view(self):
        record = KafkaRecord("t", 0, 5, 1.0, "k", "v")
        assert record.kv() == ("k", "v")

    def test_kafka_record_timestamps_carried(self, sim, broker, admin):
        admin.create_topic("ts")
        with Producer(broker, batch_size=1) as producer:
            producer.send("ts", "a")
            sim.charge(3.0)
            producer.send("ts", "b")
        p = beam.Pipeline()
        pcoll = p | read(broker, "ts")
        result = p.run()
        records = result.outputs[pcoll.producer.full_label]
        # ~3 s of clock advance plus the second produce request's overhead
        assert records[1].timestamp - records[0].timestamp == pytest.approx(
            3.0, abs=0.01
        )


class TestWriteExpansion:
    def test_write_expands_to_ensure_kv_plus_primitive(self, broker, admin, topic):
        admin.create_topic("out")
        p = beam.Pipeline()
        pcoll = p | beam.Create(["x"])
        pcoll | write(broker, "out")
        transforms = [type(node.transform).__name__ for node in p.applied]
        assert transforms == ["Create", "ParDo", "KafkaWrite"]

    def test_write_unwraps_values(self, broker, admin):
        admin.create_topic("out")
        p = beam.Pipeline()
        p | beam.Create(["x", "y"]) | write(broker, "out")
        p.run()
        assert broker.topic("out").partition(0).read_values(0) == ["x", "y"]

    def test_write_keeps_value_of_kv_pairs(self, broker, admin):
        admin.create_topic("out")
        p = beam.Pipeline()
        p | beam.Create([("k1", "a"), ("k2", "b")]) | write(broker, "out")
        p.run()
        assert broker.topic("out").partition(0).read_values(0) == ["a", "b"]

    def test_write_requires_pcollection(self, broker, admin):
        admin.create_topic("out")
        p = beam.Pipeline()
        with pytest.raises(BeamError):
            p | WriteToKafka(broker, "out")

    def test_builders_return_composites(self, broker):
        assert isinstance(read(broker, "x"), ReadFromKafka)
        assert isinstance(write(broker, "x"), WriteToKafka)
