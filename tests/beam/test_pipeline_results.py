"""Tests for runner result objects and misc surfaces."""

import pytest

import repro.beam as beam
from repro.beam.runners import DirectRunner, FlinkRunner, PipelineState
from repro.beam.runners.base import PipelineResult
from repro.engines.flink import (
    CollectSink,
    FlinkCluster,
    FromCollectionSource,
    KafkaSink,
    KafkaSource,
)
from repro.engines.apex.operators import PassThroughOperator
from repro.simtime import Simulator


class TestPipelineResult:
    def test_wait_until_finish_returns_state(self):
        p = beam.Pipeline(runner=DirectRunner())
        p | beam.Create([1]) | beam.Map(lambda v: v)
        result = p.run()
        assert result.wait_until_finish() is PipelineState.DONE

    def test_direct_runner_has_no_job_result(self):
        p = beam.Pipeline(runner=DirectRunner())
        p | beam.Create([1]) | beam.Map(lambda v: v)
        result = p.run()
        assert result.job_result is None
        assert result.runner_name == "DirectRunner"

    def test_engine_runner_exposes_job_result(self, sim):
        p = beam.Pipeline(runner=FlinkRunner(FlinkCluster(sim)))
        p | beam.Create([1, 2]) | beam.Map(lambda v: v)
        result = p.run()
        assert result.job_result is not None
        assert result.job_result.engine == "flink"
        assert result.job_result.records_in == 2

    def test_default_runner_is_direct(self):
        p = beam.Pipeline()
        p | beam.Create([1]) | beam.Map(lambda v: v * 2)
        result = p.run()
        assert isinstance(result, PipelineResult)
        assert result.state is PipelineState.DONE


class TestFlinkFunctions:
    def test_kafka_source_plan_label(self, broker, admin):
        admin.create_topic("t")
        source = KafkaSource(broker, "t")
        assert source.plan_label == "Custom Source"
        assert source.topic == "t"

    def test_from_collection_copies(self):
        values = [1, 2]
        source = FromCollectionSource(values)
        values.append(3)
        assert source.run() == [1, 2]
        # each run returns a fresh list
        first = source.run()
        first.append(99)
        assert source.run() == [1, 2]

    def test_kafka_sink_close_idempotent(self, broker, admin):
        admin.create_topic("t")
        sink = KafkaSink(broker, "t")
        sink.write(["a"])
        sink.close()
        sink.close()
        assert broker.topic("t").total_records() == 1

    def test_collect_sink_exposes_values(self):
        sink = CollectSink()
        sink.write([1])
        sink.write([2, 3])
        assert sink.values == [1, 2, 3]


class TestApexOperators:
    def test_pass_through(self):
        op = PassThroughOperator()
        assert list(op.function.process("x")) == ["x"]

    def test_describe_before_and_after_naming(self):
        op = PassThroughOperator()
        assert op.describe() == "PassThroughOperator"
        op.name = "hop"
        assert op.describe() == "hop"


class TestSimulatorSharedClock:
    def test_broker_and_engine_share_one_timeline(self, sim, broker, admin):
        """Core architectural invariant: one clock for the whole world."""
        from repro.broker import Producer
        from repro.engines.flink import StreamExecutionEnvironment

        admin.create_topic("in")
        admin.create_topic("out")
        with Producer(broker) as producer:
            producer.send_values("in", ["a"] * 100)
        ingest_time = sim.now()

        env = StreamExecutionEnvironment(FlinkCluster(sim))
        env.add_source(KafkaSource(broker, "in")).add_sink(KafkaSink(broker, "out"))
        env.execute("identity")

        out_log = broker.topic("out").partition(0)
        assert out_log.first_timestamp() > ingest_time
        assert sim.now() >= out_log.last_timestamp()
