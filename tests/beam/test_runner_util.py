"""Unit tests for the runner translation utilities."""

import pytest

import repro.beam as beam
from repro.beam.errors import BeamError, UnsupportedFeatureError
from repro.beam.runners.util import (
    DoFnAdapter,
    GroupByKeyFunction,
    extract_kv_value,
    is_shuffle_node,
    translate_chain_node,
)


class TestGroupByKeyFunction:
    def test_groups_and_flushes_on_finish(self):
        fn = GroupByKeyFunction()
        fn.open()
        for pair in [("a", 1), ("b", 2), ("a", 3)]:
            assert list(fn.process(pair)) == []
        assert list(fn.finish()) == [("a", [1, 3]), ("b", [2])]

    def test_rejects_non_kv(self):
        fn = GroupByKeyFunction()
        with pytest.raises(BeamError):
            fn.process(42)

    def test_open_resets(self):
        fn = GroupByKeyFunction()
        fn.process(("a", 1))
        fn.open()
        assert list(fn.finish()) == []

    def test_snapshot_restore_deep_copies(self):
        fn = GroupByKeyFunction()
        fn.process(("a", 1))
        snapshot = fn.snapshot()
        fn.process(("a", 2))
        fn.restore(snapshot)
        assert list(fn.finish()) == [("a", [1])]


class TestTranslateChainNode:
    def _node_for(self, transform, source_kwargs=None):
        p = beam.Pipeline()
        pcoll = p | beam.Create([("k", 1)])
        pcoll | transform
        return p.applied[-1]

    def test_pardo_becomes_adapter(self):
        node = self._node_for(beam.Map(lambda kv: kv))
        function = translate_chain_node(node, "TestRunner")
        assert isinstance(function, DoFnAdapter)

    def test_gbk_becomes_group_function(self):
        node = self._node_for(beam.GroupByKey())
        function = translate_chain_node(node, "TestRunner")
        assert isinstance(function, GroupByKeyFunction)

    def test_windowed_gbk_rejected(self):
        p = beam.Pipeline()
        pcoll = (
            p
            | beam.Create([("k", 1)], timestamps=[0.0])
            | beam.WindowInto(beam.FixedWindows(5.0))
        )
        pcoll | beam.GroupByKey()
        node = p.applied[-1]
        with pytest.raises(UnsupportedFeatureError, match="windowed"):
            translate_chain_node(node, "TestRunner")

    def test_untranslatable_transform_rejected(self):
        p = beam.Pipeline()
        pcoll = p | beam.Create([1], timestamps=[0.0])
        pcoll | beam.WindowInto(beam.GlobalWindows())
        node = p.applied[-1]
        with pytest.raises(UnsupportedFeatureError):
            translate_chain_node(node, "TestRunner")

    def test_is_shuffle_node(self):
        gbk_node = self._node_for(beam.GroupByKey())
        pardo_node = self._node_for(beam.Map(lambda kv: kv))
        assert is_shuffle_node(gbk_node)
        assert not is_shuffle_node(pardo_node)


class TestExtractKvValue:
    def test_kv_pair(self):
        assert extract_kv_value(("k", "v")) == "v"

    def test_non_pair_passthrough(self):
        assert extract_kv_value("plain") == "plain"
        assert extract_kv_value((1, 2, 3)) == (1, 2, 3)


class TestDoFnAdapter:
    def test_none_result_is_empty(self):
        class NoneDoFn(beam.DoFn):
            def process(self, element):
                return None

        adapter = DoFnAdapter(NoneDoFn())
        assert list(adapter.process("x")) == []

    def test_forwards_cost_attributes(self):
        class Weighted(beam.DoFn):
            cost_weight = 3.5
            rng_draws_per_record = 0.5

            def process(self, element):
                yield element

        adapter = DoFnAdapter(Weighted())
        assert adapter.cost_weight == 3.5
        assert adapter.rng_draws_per_record == 0.5

    def test_lifecycle(self):
        events = []

        class Probe(beam.DoFn):
            def setup(self):
                events.append("setup")

            def process(self, element):
                yield element

            def teardown(self):
                events.append("teardown")

        adapter = DoFnAdapter(Probe())
        adapter.open()
        adapter.close()
        assert events == ["setup", "teardown"]
