"""Tests for the Beam runners: translation correctness and capabilities."""

import pytest

import repro.beam as beam
from repro.beam.errors import UnsupportedFeatureError
from repro.beam.io import kafka
from repro.beam.runners import (
    ApexRunner,
    DirectRunner,
    FlinkRunner,
    PipelineState,
    SparkRunner,
)
from repro.engines.flink import FlinkCluster
from repro.engines.spark import SparkCluster
from repro.simtime import Simulator
from repro.yarn import YarnCluster


def build_grep(p, broker, out_topic):
    (
        p
        | kafka.read(broker, "in").without_metadata()
        | beam.Values()
        | beam.Filter(lambda line: "test" in line, label="Grep")
        | kafka.write(broker, out_topic)
    )


@pytest.fixture
def runners(sim):
    return {
        "direct": DirectRunner(),
        "flink": FlinkRunner(FlinkCluster(sim)),
        "spark": SparkRunner(SparkCluster(sim)),
        "apex": ApexRunner(YarnCluster(sim)),
    }


class TestOutputEquivalenceAcrossRunners:
    """The abstraction layer's core promise: same pipeline, same results,
    any runner."""

    @pytest.mark.parametrize("name", ["direct", "flink", "spark", "apex"])
    def test_grep_outputs_identical(self, name, runners, broker, admin, ingested_lines):
        admin.recreate_topic(f"out-{name}")
        p = beam.Pipeline(runner=runners[name])
        build_grep(p, broker, f"out-{name}")
        result = p.run()
        assert result.state is PipelineState.DONE
        expected = [line for line in ingested_lines if "test" in line]
        assert broker.topic(f"out-{name}").partition(0).read_values(0) == expected

    @pytest.mark.parametrize("name", ["flink", "spark", "apex"])
    def test_projection_outputs_match_direct(
        self, name, runners, broker, admin, ingested_lines
    ):
        def build(p, out):
            (
                p
                | kafka.read(broker, "in").without_metadata()
                | beam.Values()
                | beam.Map(lambda line: line.split("\t")[0], label="Projection")
                | kafka.write(broker, out)
            )

        admin.recreate_topic("out-direct")
        p = beam.Pipeline(runner=DirectRunner())
        build(p, "out-direct")
        p.run()

        admin.recreate_topic(f"out-{name}")
        p = beam.Pipeline(runner=runners[name])
        build(p, f"out-{name}")
        p.run()
        assert (
            broker.topic(f"out-{name}").partition(0).read_values(0)
            == broker.topic("out-direct").partition(0).read_values(0)
        )

    @pytest.mark.parametrize("name", ["flink", "spark", "apex"])
    def test_create_source_supported(self, name, runners):
        p = beam.Pipeline(runner=runners[name])
        p | beam.Create([1, 2, 3]) | beam.Map(lambda v: v * 2)
        result = p.run()
        assert result.state is PipelineState.DONE
        assert runners[name].collected == [2, 4, 6]


class TestFlinkRunnerTranslation:
    def test_plan_matches_figure13(self, sim, broker, admin, ingested_lines):
        """Source + Flat Map + 5 RawParDo operators, no dedicated sink."""
        admin.create_topic("out")
        runner = FlinkRunner(FlinkCluster(sim))
        p = beam.Pipeline(runner=runner)
        build_grep(p, broker, "out")
        result = p.run()
        plan = result.job_result.plan
        assert len(plan) == 7
        labels = [n.label for n in plan.nodes]
        assert labels[0] == "Source: PTransformTranslation.UnknownRawPTransform"
        assert labels[1] == "Flat Map"
        assert labels[2:] == ["ParDoTranslation.RawParDo"] * 5
        # no dedicated data sink: the last element renders as an Operator
        assert plan.nodes[-1].kind_label == "Operator"
        assert all(n.parallelism == 1 for n in plan.nodes)

    def test_beam_grep_slower_than_native_grep(self, broker, admin, ingested_lines):
        def native():
            from repro.engines.flink import KafkaSink, KafkaSource, StreamExecutionEnvironment

            local = Simulator(seed=11)
            cluster = FlinkCluster(local)
            env = StreamExecutionEnvironment(cluster)
            env.add_source(KafkaSource(broker, "in")).filter(
                lambda line: "test" in line, cost_weight=0.4
            ).add_sink(KafkaSink(broker, "out-n"))
            return env.execute("grep").base_duration

        def with_beam():
            local = Simulator(seed=11)
            runner = FlinkRunner(FlinkCluster(local))
            p = beam.Pipeline(runner=runner)
            build_grep(p, broker, "out-b")
            return p.run().job_result.base_duration

        admin.recreate_topic("out-n")
        admin.recreate_topic("out-b")
        assert with_beam() > 3 * native()

    def test_fuse_pardos_ablation_is_cheaper(self, broker, admin, ingested_lines):
        """Re-enabling chaining removes the per-operator hand-off hops.

        Measured on a 1:1 pipeline (projection): for filtering pipelines the
        fused stage charges its wrapper costs on all stage inputs (a
        documented simplification), which can mask the hop saving.
        """

        def run(fuse):
            local = Simulator(seed=12)
            runner = FlinkRunner(FlinkCluster(local), fuse_pardos=fuse)
            admin.recreate_topic("out")
            p = beam.Pipeline(runner=runner)
            (
                p
                | kafka.read(broker, "in").without_metadata()
                | beam.Values()
                | beam.Map(lambda line: line.split("\t")[0], label="Projection")
                | kafka.write(broker, "out")
            )
            return p.run().job_result.base_duration

        assert run(True) < run(False)


class TestSparkRunnerCapabilities:
    def test_stateful_dofn_rejected(self, sim, broker, admin, ingested_lines):
        """The paper's reason for excluding stateful queries."""

        class StatefulDoFn(beam.DoFn):
            stateful = True

            def process(self, element):
                yield element

        admin.create_topic("out")
        runner = SparkRunner(SparkCluster(sim))
        p = beam.Pipeline(runner=runner)
        (
            p
            | kafka.read(broker, "in").without_metadata()
            | beam.Values()
            | beam.ParDo(StatefulDoFn())
            | kafka.write(broker, "out")
        )
        with pytest.raises(UnsupportedFeatureError, match="stateful"):
            p.run()

    def test_stateful_dofn_accepted_on_flink_and_apex(
        self, sim, broker, admin, ingested_lines
    ):
        class CountingDoFn(beam.DoFn):
            stateful = True

            def __init__(self):
                self.count = 0

            def process(self, element):
                self.count += 1
                yield self.count

        for make_runner in (
            lambda: FlinkRunner(FlinkCluster(sim)),
            lambda: ApexRunner(YarnCluster(sim)),
        ):
            runner = make_runner()
            p = beam.Pipeline(runner=runner)
            p | beam.Create(["a", "b", "c"]) | beam.ParDo(CountingDoFn())
            p.run()
            assert runner.collected == [1, 2, 3]

    def test_parallelism_two_slower_than_one(self, broker, admin, ingested_lines):
        """The paper's Spark-Beam P2 > P1 observation."""

        def run(parallelism):
            local = Simulator(seed=13)
            runner = SparkRunner(SparkCluster(local), parallelism=parallelism)
            admin.recreate_topic("out")
            p = beam.Pipeline(runner=runner)
            build_grep(p, broker, "out")
            return p.run().job_result.base_duration

        assert run(2) > run(1)


class TestEngineRunnerLimits:
    @pytest.mark.parametrize(
        "make_runner",
        [
            lambda sim: FlinkRunner(FlinkCluster(sim)),
            lambda sim: SparkRunner(SparkCluster(sim)),
            lambda sim: ApexRunner(YarnCluster(sim)),
        ],
    )
    def test_bounded_group_by_key_supported(self, make_runner, sim):
        """Bounded global-window GroupByKey translates onto the engines."""
        runner = make_runner(sim)
        p = beam.Pipeline(runner=runner)
        (
            p
            | beam.Create([("a", 1), ("b", 2), ("a", 3)])
            | beam.GroupByKey()
        )
        p.run()
        assert runner.collected == [("a", [1, 3]), ("b", [2])]

    @pytest.mark.parametrize(
        "make_runner",
        [
            lambda sim: FlinkRunner(FlinkCluster(sim)),
            lambda sim: SparkRunner(SparkCluster(sim)),
            lambda sim: ApexRunner(YarnCluster(sim)),
        ],
    )
    def test_combine_per_key_on_engines_matches_direct(self, make_runner, sim):
        pairs = [("a", 1), ("b", 5), ("a", 2), ("c", 7), ("a", 4)]

        def build(p):
            return p | beam.Create(pairs) | beam.CombinePerKey(sum)

        direct = beam.Pipeline(runner=DirectRunner())
        pcoll = build(direct)
        expected = direct.run().outputs[pcoll.producer.full_label]

        runner = make_runner(sim)
        p = beam.Pipeline(runner=runner)
        build(p)
        p.run()
        assert runner.collected == expected

    def test_windowed_group_by_key_requires_direct_runner(self, sim):
        p = beam.Pipeline(runner=FlinkRunner(FlinkCluster(sim)))
        (
            p
            | beam.Create([("k", 1)], timestamps=[0.0])
            | beam.WindowInto(beam.FixedWindows(10.0))
            | beam.GroupByKey()
        )
        with pytest.raises(UnsupportedFeatureError):
            p.run()

    def test_empty_pipeline_rejected(self, sim):
        p = beam.Pipeline(runner=FlinkRunner(FlinkCluster(sim)))
        with pytest.raises(UnsupportedFeatureError):
            p.run()

    def test_non_linear_pipeline_rejected(self, sim):
        runner = FlinkRunner(FlinkCluster(sim))
        p = beam.Pipeline(runner=runner)
        source = p | beam.Create([1])
        source | "A" >> beam.Map(lambda v: v)
        source | "B" >> beam.Map(lambda v: v)
        with pytest.raises(UnsupportedFeatureError):
            p.run()


class TestApexRunnerStructure:
    def test_output_heavy_query_much_slower_than_sparse(
        self, broker, admin, ingested_lines
    ):
        """The paper's Apex pattern: the more output, the higher the
        penalty."""

        def run(build):
            local = Simulator(seed=14)
            runner = ApexRunner(YarnCluster(local))
            admin.recreate_topic("out")
            p = beam.Pipeline(runner=runner)
            build(p)
            return p.run().job_result.base_duration

        def identity(p):
            (
                p
                | kafka.read(broker, "in").without_metadata()
                | beam.Values()
                | kafka.write(broker, "out")
            )

        def grep(p):
            build_grep(p, broker, "out")

        assert run(identity) > 5 * run(grep)

    def test_yarn_resources_released(self, sim, broker, admin, ingested_lines):
        yarn = YarnCluster(sim)
        admin.create_topic("out")
        runner = ApexRunner(yarn)
        p = beam.Pipeline(runner=runner)
        build_grep(p, broker, "out")
        p.run()
        assert (
            yarn.resource_manager.available_resources()
            == yarn.resource_manager.total_capacity()
        )
