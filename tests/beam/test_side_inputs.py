"""Tests for ParDo side inputs (paper II-A)."""

import pytest

import repro.beam as beam
from repro.beam.errors import UnsupportedFeatureError
from repro.beam.runners import DirectRunner, FlinkRunner
from repro.engines.flink import FlinkCluster


class EnrichDoFn(beam.DoFn):
    """Joins each element against a dict side input."""

    def process(self, element):
        lookup = self.side_inputs["lookup"]
        yield (element, lookup.get(element, "?"))


class ThresholdDoFn(beam.DoFn):
    """Keeps elements above a singleton side-input threshold."""

    def process(self, element):
        if element > self.side_inputs["threshold"]:
            yield element


class TestSideInputViews:
    def test_as_list(self):
        p = beam.Pipeline()
        side = p | "Side" >> beam.Create([10, 20])

        class SumSide(beam.DoFn):
            def process(self, element):
                yield element + sum(self.side_inputs["extra"])

        pcoll = p | "Main" >> beam.Create([1, 2]) | beam.ParDo(
            SumSide(), side_inputs={"extra": beam.AsList(side)}
        )
        result = p.run()
        assert result.outputs[pcoll.producer.full_label] == [31, 32]

    def test_as_dict_enrichment(self):
        p = beam.Pipeline()
        lookup = p | "Lookup" >> beam.Create([("a", 1), ("b", 2)])
        pcoll = p | "Main" >> beam.Create(["a", "b", "c"]) | beam.ParDo(
            EnrichDoFn(), side_inputs={"lookup": beam.AsDict(lookup)}
        )
        result = p.run()
        assert result.outputs[pcoll.producer.full_label] == [
            ("a", 1),
            ("b", 2),
            ("c", "?"),
        ]

    def test_as_singleton(self):
        p = beam.Pipeline()
        threshold = p | "Threshold" >> beam.Create([5])
        pcoll = p | "Main" >> beam.Create([3, 7, 9]) | beam.ParDo(
            ThresholdDoFn(), side_inputs={"threshold": beam.AsSingleton(threshold)}
        )
        result = p.run()
        assert result.outputs[pcoll.producer.full_label] == [7, 9]

    def test_singleton_requires_one_element(self):
        p = beam.Pipeline()
        threshold = p | "Threshold" >> beam.Create([5, 6])
        p | "Main" >> beam.Create([1]) | beam.ParDo(
            ThresholdDoFn(), side_inputs={"threshold": beam.AsSingleton(threshold)}
        )
        with pytest.raises(ValueError):
            p.run()

    def test_side_input_computed_by_upstream_transforms(self):
        p = beam.Pipeline()
        side = (
            p
            | "Side" >> beam.Create([("k", 1), ("k", 2)])
            | beam.CombinePerKey(sum)
        )
        pcoll = p | "Main" >> beam.Create(["k"]) | beam.ParDo(
            EnrichDoFn(), side_inputs={"lookup": beam.AsDict(side)}
        )
        result = p.run()
        assert result.outputs[pcoll.producer.full_label] == [("k", 3)]

    def test_view_must_wrap_pcollection(self):
        with pytest.raises(TypeError):
            beam.AsList([1, 2, 3])  # type: ignore[arg-type]

    def test_side_inputs_must_be_views(self):
        p = beam.Pipeline()
        side = p | beam.Create([1])
        with pytest.raises(TypeError):
            beam.ParDo(EnrichDoFn(), side_inputs={"lookup": side})  # type: ignore[dict-item]


class TestEngineRunnerLimit:
    def test_engine_runners_reject_side_inputs(self, sim):
        """A linear pipeline whose ParDo carries a side input view is
        refused with a side-input-specific error."""
        runner = FlinkRunner(FlinkCluster(sim))
        p = beam.Pipeline(runner=runner)
        main = p | beam.Create([("a", 1)])
        main | beam.ParDo(EnrichDoFn(), side_inputs={"lookup": beam.AsDict(main)})
        with pytest.raises(UnsupportedFeatureError, match="side inputs"):
            p.run()

    def test_multi_root_side_pipelines_also_rejected(self, sim):
        """Side inputs from a second root make the graph non-linear, which
        the engine runners reject as well (DirectRunner handles it)."""
        runner = FlinkRunner(FlinkCluster(sim))
        p = beam.Pipeline(runner=runner)
        side = p | "Side" >> beam.Create([("a", 1)])
        p | "Main" >> beam.Create(["a"]) | beam.ParDo(
            EnrichDoFn(), side_inputs={"lookup": beam.AsDict(side)}
        )
        with pytest.raises(UnsupportedFeatureError):
            p.run()
