"""Tests for the Beam model: transforms, pipeline graph, coders."""

import pytest

import repro.beam as beam
from repro.beam.errors import BeamError, PipelineStateError
from repro.beam.pvalue import PCollection, PCollectionList
from repro.beam.runners import DirectRunner


def run_and_get(pipeline, pcoll):
    result = pipeline.run()
    return result.outputs[pcoll.producer.full_label]


class TestPipelineGraph:
    def test_apply_records_primitives_only(self):
        p = beam.Pipeline()
        p | beam.Create([1]) | beam.Map(lambda v: v)
        labels = [node.full_label for node in p.applied]
        assert len(labels) == 2  # Create + the Map's ParDo; no composite node

    def test_label_operator(self):
        p = beam.Pipeline()
        p | "MySource" >> beam.Create([1])
        assert p.applied[0].full_label == "MySource"

    def test_duplicate_labels_uniquified(self):
        p = beam.Pipeline()
        pc = p | beam.Create([1])
        pc | "X" >> beam.Map(lambda v: v)
        pc2 = p | "S2" >> beam.Create([2])
        pc2 | "X" >> beam.Map(lambda v: v)
        labels = [node.full_label for node in p.applied]
        assert len(set(labels)) == len(labels)

    def test_apply_non_transform_raises(self):
        p = beam.Pipeline()
        with pytest.raises(BeamError):
            p | (lambda v: v)  # type: ignore[operator]

    def test_run_twice_raises(self):
        p = beam.Pipeline()
        p | beam.Create([1]) | beam.Map(lambda v: v)
        p.run()
        with pytest.raises(PipelineStateError):
            p.run()

    def test_apply_after_run_raises(self):
        p = beam.Pipeline()
        pc = p | beam.Create([1])
        p.run()
        with pytest.raises(PipelineStateError):
            pc | beam.Map(lambda v: v)

    def test_context_manager_runs(self):
        collected = {}
        with beam.Pipeline() as p:
            pc = p | beam.Create([1, 2]) | beam.Map(lambda v: v + 1)
            collected["pc"] = pc
        assert p.result is not None
        assert p.result.outputs[collected["pc"].producer.full_label] == [2, 3]

    def test_context_manager_does_not_run_on_error(self):
        with pytest.raises(RuntimeError):
            with beam.Pipeline() as p:
                p | beam.Create([1])
                raise RuntimeError("boom")
        assert p.result is None

    def test_consumers(self):
        p = beam.Pipeline()
        pc = p | beam.Create([1])
        pc | "A" >> beam.Map(lambda v: v)
        pc | "B" >> beam.Map(lambda v: v)
        assert {n.full_label for n in p.consumers(pc)} == {"A", "B"}


class TestElementWiseTransforms:
    def test_map(self):
        p = beam.Pipeline()
        pc = p | beam.Create([1, 2, 3]) | beam.Map(lambda v: v * 2)
        assert run_and_get(p, pc) == [2, 4, 6]

    def test_filter(self):
        p = beam.Pipeline()
        pc = p | beam.Create(range(10)) | beam.Filter(lambda v: v % 3 == 0)
        assert run_and_get(p, pc) == [0, 3, 6, 9]

    def test_flat_map(self):
        p = beam.Pipeline()
        pc = p | beam.Create(["a b", "c"]) | beam.FlatMap(str.split)
        assert run_and_get(p, pc) == ["a", "b", "c"]

    def test_pardo_with_dofn_class(self):
        class AddOne(beam.DoFn):
            def process(self, element):
                yield element + 1

        p = beam.Pipeline()
        pc = p | beam.Create([1, 2]) | beam.ParDo(AddOne())
        assert run_and_get(p, pc) == [2, 3]

    def test_pardo_none_output_means_drop(self):
        class DropAll(beam.DoFn):
            def process(self, element):
                return None

        p = beam.Pipeline()
        pc = p | beam.Create([1, 2]) | beam.ParDo(DropAll())
        assert run_and_get(p, pc) == []

    def test_pardo_requires_dofn(self):
        with pytest.raises(TypeError):
            beam.ParDo(lambda v: v)  # type: ignore[arg-type]

    def test_pardo_lifecycle(self):
        events = []

        class Probe(beam.DoFn):
            def setup(self):
                events.append("setup")

            def process(self, element):
                events.append("process")
                yield element

            def teardown(self):
                events.append("teardown")

        p = beam.Pipeline()
        p | beam.Create([1, 2]) | beam.ParDo(Probe())
        p.run()
        assert events == ["setup", "process", "process", "teardown"]

    def test_kv_helpers(self):
        p = beam.Pipeline()
        source = p | beam.Create([("k1", 1), ("k2", 2)])
        values = source | beam.Values()
        keys = source | beam.Keys()
        swapped = source | beam.KvSwap()
        result = p.run()
        assert result.outputs[values.producer.full_label] == [1, 2]
        assert result.outputs[keys.producer.full_label] == ["k1", "k2"]
        assert result.outputs[swapped.producer.full_label] == [(1, "k1"), (2, "k2")]

    def test_with_keys(self):
        p = beam.Pipeline()
        pc = p | beam.Create(["aa", "b"]) | beam.WithKeys(len)
        assert run_and_get(p, pc) == [(2, "aa"), (1, "b")]


class TestGroupingTransforms:
    def test_group_by_key(self):
        p = beam.Pipeline()
        pc = (
            p
            | beam.Create([("a", 1), ("b", 2), ("a", 3)])
            | beam.GroupByKey()
        )
        groups = dict(run_and_get(p, pc))
        assert groups == {"a": [1, 3], "b": [2]}

    def test_group_by_key_requires_kv(self):
        p = beam.Pipeline()
        p | beam.Create([1, 2]) | beam.GroupByKey()
        with pytest.raises(BeamError):
            p.run()

    def test_combine_per_key(self):
        p = beam.Pipeline()
        pc = (
            p
            | beam.Create([("a", 1), ("a", 2), ("b", 5)])
            | beam.CombinePerKey(sum)
        )
        assert dict(run_and_get(p, pc)) == {"a": 3, "b": 5}

    def test_count_per_key(self):
        p = beam.Pipeline()
        pc = (
            p
            | beam.Create([("a", "x"), ("a", "y"), ("b", "z")])
            | beam.Count.per_key()
        )
        assert dict(run_and_get(p, pc)) == {"a": 2, "b": 1}

    def test_count_per_element(self):
        p = beam.Pipeline()
        pc = p | beam.Create(["w", "w", "v"]) | beam.Count.per_element()
        assert dict(run_and_get(p, pc)) == {"w": 2, "v": 1}

    def test_mean_per_key(self):
        p = beam.Pipeline()
        pc = (
            p
            | beam.Create([("a", 1.0), ("a", 3.0), ("b", 4.0)])
            | beam.MeanPerKey()
        )
        assert dict(run_and_get(p, pc)) == {"a": 2.0, "b": 4.0}

    def test_flatten(self):
        p = beam.Pipeline()
        a = p | "A" >> beam.Create([1, 2])
        b = p | "B" >> beam.Create([3])
        pc = PCollectionList([a, b]) | beam.Flatten()
        assert sorted(run_and_get(p, pc)) == [1, 2, 3]

    def test_flatten_requires_list(self):
        p = beam.Pipeline()
        pc = p | beam.Create([1])
        with pytest.raises(BeamError):
            pc | beam.Flatten()

    def test_flatten_empty_list_rejected(self):
        with pytest.raises(ValueError):
            PCollectionList([])

    def test_flatten_mixed_pipelines_rejected(self):
        p1 = beam.Pipeline()
        p2 = beam.Pipeline()
        a = p1 | beam.Create([1])
        b = p2 | beam.Create([2])
        with pytest.raises(ValueError):
            PCollectionList([a, b])


class TestCreate:
    def test_create_must_be_root(self):
        p = beam.Pipeline()
        pc = p | beam.Create([1])
        with pytest.raises(BeamError):
            pc | beam.Create([2])

    def test_create_timestamps_length_check(self):
        with pytest.raises(ValueError):
            beam.Create([1, 2], timestamps=[0.0])

    def test_impulse(self):
        p = beam.Pipeline()
        pc = p | beam.Impulse()
        assert run_and_get(p, pc) == [b""]
