"""Tests for windowing, triggers and the unbounded-GroupByKey rule."""

import pytest

import repro.beam as beam
from repro.beam.errors import WindowingError
from repro.beam.window import (
    AfterCount,
    FixedWindows,
    GLOBAL_WINDOW,
    GlobalWindows,
    IntervalWindow,
    SlidingWindows,
    WindowedValue,
    WindowingStrategy,
)


class TestWindowFns:
    def test_global_assigns_global_window(self):
        assert GlobalWindows().assign(123.0) == GLOBAL_WINDOW

    def test_fixed_window_assignment(self):
        fn = FixedWindows(size=10.0)
        assert fn.assign(0.0) == IntervalWindow(0.0, 10.0)
        assert fn.assign(9.999) == IntervalWindow(0.0, 10.0)
        assert fn.assign(10.0) == IntervalWindow(10.0, 20.0)

    def test_fixed_window_offset(self):
        fn = FixedWindows(size=10.0, offset=3.0)
        assert fn.assign(2.0) == IntervalWindow(-7.0, 3.0)
        assert fn.assign(3.0) == IntervalWindow(3.0, 13.0)

    def test_fixed_window_invalid_size(self):
        with pytest.raises(ValueError):
            FixedWindows(size=0)

    def test_sliding_window(self):
        fn = SlidingWindows(size=10.0, period=5.0)
        window = fn.assign(7.0)
        assert window.start == 5.0
        assert window.end == 15.0

    def test_sliding_window_period_bound(self):
        with pytest.raises(ValueError):
            SlidingWindows(size=5.0, period=10.0)

    def test_interval_window_validation(self):
        with pytest.raises(ValueError):
            IntervalWindow(5.0, 5.0)

    def test_after_count_validation(self):
        with pytest.raises(ValueError):
            AfterCount(0)


class TestWindowingStrategy:
    def test_global_without_trigger_disallows_unbounded_grouping(self):
        strategy = WindowingStrategy(GlobalWindows())
        assert not strategy.allows_unbounded_grouping

    def test_non_global_allows(self):
        assert WindowingStrategy(FixedWindows(10)).allows_unbounded_grouping

    def test_trigger_allows(self):
        strategy = WindowingStrategy(GlobalWindows(), AfterCount(100))
        assert strategy.allows_unbounded_grouping


class TestWindowedValue:
    def test_with_value_keeps_position(self):
        wv = WindowedValue("a", 5.0, IntervalWindow(0, 10))
        updated = wv.with_value("b")
        assert updated.value == "b"
        assert updated.timestamp == 5.0
        assert updated.window == IntervalWindow(0, 10)


class TestPipelineWindowing:
    def test_group_by_key_on_unbounded_global_raises(self, broker, admin):
        """The Beam model rule the paper quotes in II-A."""
        from repro.beam.io import kafka

        admin.create_topic("t")
        p = beam.Pipeline()
        pc = (
            p
            | kafka.read(broker, "t", bounded=False).without_metadata()
        )
        with pytest.raises(WindowingError):
            pc | beam.GroupByKey()

    def test_windowing_or_trigger_legalises_unbounded_grouping(self, broker, admin):
        from repro.beam.io import kafka

        admin.create_topic("t")
        p = beam.Pipeline()
        pc = p | kafka.read(broker, "t", bounded=False).without_metadata()
        windowed = pc | beam.WindowInto(beam.FixedWindows(60.0))
        windowed | beam.GroupByKey()  # must not raise

        p2 = beam.Pipeline()
        pc2 = p2 | kafka.read(broker, "t", bounded=False).without_metadata()
        triggered = pc2 | beam.WindowInto(
            beam.GlobalWindows(), trigger=beam.AfterCount(10)
        )
        triggered | beam.GroupByKey()  # must not raise

    def test_bounded_global_grouping_is_fine(self):
        p = beam.Pipeline()
        p | beam.Create([("k", 1)]) | beam.GroupByKey()

    def test_fixed_windows_split_groups(self):
        p = beam.Pipeline()
        pc = (
            p
            | beam.Create(
                [("k", 1), ("k", 2), ("k", 3)], timestamps=[0.0, 5.0, 15.0]
            )
            | beam.WindowInto(beam.FixedWindows(10.0))
            | beam.GroupByKey()
        )
        result = p.run()
        groups = sorted(result.outputs[pc.producer.full_label])
        assert groups == [("k", [1, 2]), ("k", [3])]

    def test_windowed_grouping_separates_keys_and_windows(self):
        p = beam.Pipeline()
        pc = (
            p
            | beam.Create(
                [("a", 1), ("b", 2), ("a", 3)], timestamps=[0.0, 0.0, 100.0]
            )
            | beam.WindowInto(beam.FixedWindows(10.0))
            | beam.GroupByKey()
        )
        result = p.run()
        assert sorted(result.outputs[pc.producer.full_label]) == [
            ("a", [1]),
            ("a", [3]),
            ("b", [2]),
        ]
