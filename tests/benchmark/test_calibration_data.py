"""Integrity checks on the transcribed paper data (calibration targets)."""

import pytest

from repro.benchmark import stats
from repro.benchmark.calibration import (
    PAPER_EXECUTION_TIMES,
    PAPER_NUM_RUNS,
    PAPER_PARALLELISMS,
    PAPER_RELATIVE_STD,
    PAPER_SLOWDOWN_FACTORS,
    PAPER_TABLE3,
    paper_mean,
)

SYSTEMS = ("flink", "spark", "apex")
QUERIES = ("identity", "sample", "projection", "grep")


class TestCompleteness:
    def test_execution_times_cover_all_48_cells(self):
        assert len(PAPER_EXECUTION_TIMES) == 48
        for system in SYSTEMS:
            for query in QUERIES:
                for sdk in ("native", "beam"):
                    for p in PAPER_PARALLELISMS:
                        assert (system, query, sdk, p) in PAPER_EXECUTION_TIMES

    def test_relative_std_covers_24_combinations(self):
        assert len(PAPER_RELATIVE_STD) == 24

    def test_slowdowns_cover_12_combinations(self):
        assert len(PAPER_SLOWDOWN_FACTORS) == 12

    def test_table3_has_ten_runs_per_parallelism(self):
        assert len(PAPER_TABLE3[1]) == PAPER_NUM_RUNS
        assert len(PAPER_TABLE3[2]) == PAPER_NUM_RUNS


class TestInternalConsistency:
    """The transcribed figures must be mutually consistent — a typo in any
    number would break these relations."""

    def test_slowdowns_match_execution_time_ratios(self):
        """Figure 11 equals the paper's own formula applied to Figures 6-9
        (within rounding of the published two-decimal values)."""
        for (system, query), published in PAPER_SLOWDOWN_FACTORS.items():
            computed = stats.slowdown_factor(
                {
                    p: PAPER_EXECUTION_TIMES[(system, query, "beam", p)]
                    for p in PAPER_PARALLELISMS
                },
                {
                    p: PAPER_EXECUTION_TIMES[(system, query, "native", p)]
                    for p in PAPER_PARALLELISMS
                },
            )
            assert computed == pytest.approx(published, rel=0.02), (
                f"{system}/{query}: figure says {published}, "
                f"recomputed {computed:.2f}"
            )

    def test_table3_means_match_figure6(self):
        """Table III's per-run series average to Figure 6's Flink rows."""
        for parallelism in PAPER_PARALLELISMS:
            mean = stats.mean(PAPER_TABLE3[parallelism])
            figure = PAPER_EXECUTION_TIMES[("flink", "identity", "native", parallelism)]
            assert mean == pytest.approx(figure, rel=0.01)

    def test_table3_outlier_claims(self):
        """The paper's prose about Table III holds for the numbers."""
        p1 = PAPER_TABLE3[1]
        # "seven out of ten execution times range from three to four seconds"
        in_band = [t for t in p1 if 3.0 <= t <= 4.0]
        assert len(in_band) == 7
        # "the highest execution time is more than seven times the lowest"
        assert max(p1) > 7 * min(p1)

    def test_figure10_standout(self):
        """'There is one value that is notably higher than others' — 0.54
        for identity on native Flink."""
        standout = PAPER_RELATIVE_STD[("flink", "native", "identity")]
        assert standout == max(PAPER_RELATIVE_STD.values())
        rest = [v for k, v in PAPER_RELATIVE_STD.items() if v != standout]
        assert standout > 2 * max(rest)

    def test_apex_grep_is_the_only_speedup(self):
        speedups = {
            cell: sf for cell, sf in PAPER_SLOWDOWN_FACTORS.items() if sf < 1.0
        }
        assert list(speedups) == [("apex", "grep")]

    def test_paper_mean_helper(self):
        assert paper_mean("flink", "grep", "native") == pytest.approx(
            (1.58 + 1.43) / 2
        )

    def test_slowdown_range_claim(self):
        """'Except for this exceptional case, slowdown factors range from
        about three to almost 60.'"""
        others = [
            sf
            for cell, sf in PAPER_SLOWDOWN_FACTORS.items()
            if cell != ("apex", "grep")
        ]
        assert min(others) > 2.9
        assert max(others) < 60
