"""Tests for repro.benchmark.capacity: probes, knee search, determinism."""

import pytest

from repro.benchmark.capacity import (
    CapacityRunner,
    estimate_service_rate,
    find_capacity,
    run_probe,
)
from repro.benchmark.config import BenchmarkConfig, CapacitySettings
from repro.engines.common.pump import StreamPump


SMALL = CapacitySettings(records=2_000, queue_bound=500, search_iterations=3)


def config(**overrides):
    defaults = dict(capacity=SMALL, systems=("flink",), queries=("grep",))
    defaults.update(overrides)
    return BenchmarkConfig(**defaults)


class TestProbe:
    def test_sustainable_probe_drains_within_grace(self):
        cfg = config()
        rate = estimate_service_rate(cfg, "flink", "grep") * 0.5
        probe = run_probe(cfg, "flink", "grep", rate, columnar=False)
        assert probe.sustainable
        assert probe.shed == 0
        assert probe.accepted == SMALL.records
        assert probe.elapsed <= probe.offer_window * (1 + SMALL.grace)

    def test_overload_probe_is_unsustainable_but_terminates(self):
        cfg = config()
        rate = estimate_service_rate(cfg, "flink", "grep") * 4.0
        probe = run_probe(cfg, "flink", "grep", rate, columnar=False)
        assert not probe.sustainable
        # Backpressure, not loss: everything lands, just late.
        assert probe.accepted == SMALL.records
        assert probe.offered == probe.accepted + probe.shed
        assert probe.max_queue_depth <= SMALL.queue_bound
        assert probe.elapsed > probe.offer_window * (1 + SMALL.grace)

    def test_percentiles_are_ordered(self):
        cfg = config()
        rate = estimate_service_rate(cfg, "flink", "grep") * 0.8
        probe = run_probe(cfg, "flink", "grep", rate, columnar=False)
        assert probe.event_p50 <= probe.event_p95 <= probe.event_p99
        assert probe.proc_p50 <= probe.proc_p95 <= probe.proc_p99
        # Event time includes the nominal wait before admission.
        assert probe.event_p99 >= probe.proc_p99

    def test_probe_is_deterministic(self):
        cfg = config()
        a = run_probe(cfg, "apex", "sample", 100_000.0, columnar=False)
        b = run_probe(cfg, "apex", "sample", 100_000.0, columnar=False)
        assert a == b

    def test_probe_identical_across_planes(self):
        cfg = config()
        list_plane = run_probe(cfg, "spark", "grep", 120_000.0, columnar=False)
        columnar = run_probe(cfg, "spark", "grep", 120_000.0, columnar=True)
        assert list_plane == columnar

    def test_probe_identical_across_tiers(self):
        cfg = config()
        results = {}
        tiers = {
            "tuple": (False, False),
            "batch": (True, False),
            "kernel": (True, True),
        }
        saved = (StreamPump.vectorized, StreamPump.use_kernels)
        try:
            for tier, (vectorized, use_kernels) in tiers.items():
                StreamPump.vectorized = vectorized
                StreamPump.use_kernels = use_kernels
                results[tier] = run_probe(
                    cfg, "flink", "projection", 50_000.0, columnar=False
                )
        finally:
            StreamPump.vectorized, StreamPump.use_kernels = saved
        assert results["tuple"] == results["batch"] == results["kernel"]


class TestKneeSearch:
    def test_finds_a_bracketed_knee(self):
        cfg = config()
        cell = find_capacity(cfg, "flink", "grep", columnar=False)
        assert cell.sustainable_rate > 0
        assert cell.probes >= 1 + SMALL.search_iterations
        # The knee is genuinely the boundary: sustainable at the knee,
        # unsustainable a factor above it.
        at_knee = run_probe(
            cfg, "flink", "grep", cell.sustainable_rate, columnar=False
        )
        above = run_probe(
            cfg, "flink", "grep", cell.sustainable_rate * 2.0, columnar=False
        )
        assert at_knee.sustainable
        assert not above.sustainable

    def test_overload_at_twice_the_knee_is_safe(self):
        """The ISSUE's acceptance scenario, on both data planes."""
        cfg = config()
        cell = find_capacity(cfg, "flink", "grep", columnar=False)
        for columnar in (False, True):
            probe = run_probe(
                cfg, "flink", "grep", cell.sustainable_rate * 2.0,
                columnar=columnar,
            )
            assert probe.max_queue_depth <= SMALL.queue_bound
            assert probe.offered == probe.accepted + probe.shed
            assert probe.accepted == SMALL.records  # terminated, no loss

    def test_search_is_deterministic(self):
        cfg = config()
        a = find_capacity(cfg, "spark", "sample", columnar=False)
        b = find_capacity(cfg, "spark", "sample", columnar=False)
        assert a == b


class TestCapacityReport:
    def test_serial_parallel_bit_identical(self):
        cfg = config(systems=("flink", "apex"), queries=("grep", "identity"))
        runner = CapacityRunner(cfg, columnar=False)
        serial = runner.run(parallel=False)
        parallel = runner.run(parallel=True, workers=2)
        assert serial.cells == parallel.cells

    def test_grid_order_and_lookup(self):
        cfg = config(systems=("flink", "spark"), queries=("grep",))
        report = CapacityRunner(cfg, columnar=False).run()
        assert [(c.system, c.query) for c in report.cells] == [
            ("flink", "grep"),
            ("spark", "grep"),
        ]
        assert report.cell("spark", "grep").system == "spark"
        with pytest.raises(KeyError):
            report.cell("spark", "identity")

    def test_harness_entry_point(self):
        from repro.benchmark.harness import StreamBenchHarness

        harness = StreamBenchHarness(config(), columnar=False)
        report = harness.run_capacity()
        assert len(report.cells) == 1
        assert report.cells[0].queue_bound == SMALL.queue_bound

    def test_settings_validation(self):
        with pytest.raises(ValueError):
            CapacitySettings(records=0)
        with pytest.raises(ValueError):
            CapacitySettings(queue_bound=0)
        with pytest.raises(ValueError):
            CapacitySettings(grace=-0.1)
        with pytest.raises(ValueError):
            CapacitySettings(process="poisson")
        with pytest.raises(ValueError):
            CapacitySettings(stall_timeout=0.0)

    def test_render_capacity(self):
        from repro.benchmark.reporting import render_capacity

        cfg = config()
        report = CapacityRunner(cfg, columnar=False).run()
        text = render_capacity(report)
        assert "Sustainable throughput" in text
        assert "Flink" in text
        assert "grep" in text


SWEEP = CapacitySettings(
    records=2_000,
    queue_bound=500,
    search_iterations=3,
    parallelisms=(1, 2, 4),
    kinds=("native", "beam"),
)


class TestParallelProbes:
    """Capacity probes at P > 1: pump-pool drain, same open-loop physics."""

    def test_parallel_probe_drains_and_accounts(self):
        # The pipeline estimate scales with P but the broker append path
        # does not, so 0.5x the P=4 estimate already overloads; 0.15x is
        # safely below the serial fraction's ceiling.
        cfg = config()
        rate = estimate_service_rate(cfg, "flink", "grep", parallelism=4) * 0.15
        probe = run_probe(
            cfg, "flink", "grep", rate, columnar=False, parallelism=4
        )
        assert probe.sustainable
        assert probe.accepted == SMALL.records
        assert probe.offered == probe.accepted + probe.shed

    def test_parallel_probe_is_deterministic(self):
        cfg = config()
        a = run_probe(
            cfg, "apex", "sample", 100_000.0, columnar=False, parallelism=2
        )
        b = run_probe(
            cfg, "apex", "sample", 100_000.0, columnar=False, parallelism=2
        )
        assert a == b

    def test_parallelism_one_matches_legacy_path(self):
        # P=1 goes through the exact serial pump with the old stream
        # names — a probe asked for parallelism=1 must equal one that
        # never mentioned parallelism at all.
        cfg = config()
        legacy = run_probe(cfg, "flink", "grep", 80_000.0, columnar=False)
        explicit = run_probe(
            cfg, "flink", "grep", 80_000.0, columnar=False, parallelism=1
        )
        assert explicit == legacy

    def test_knee_grows_sublinearly_with_parallelism(self):
        # More pipeline parallelism raises the knee, but the broker
        # append/fetch path stays serial (Amdahl) and the engines charge
        # per-record coordination — so speedup stays below linear.
        cfg = config()
        knees = {
            p: find_capacity(
                cfg, "flink", "grep", columnar=False, parallelism=p
            ).sustainable_rate
            for p in (1, 2, 4)
        }
        assert knees[1] < knees[2] < knees[4]
        assert knees[2] < 2 * knees[1]
        assert knees[4] < 4 * knees[1]

    def test_beam_knee_below_native(self):
        # The abstraction penalty holds at the capacity knee too.
        cfg = config()
        for parallelism in (1, 2):
            native = find_capacity(
                cfg, "flink", "grep", columnar=False,
                kind="native", parallelism=parallelism,
            )
            beam = find_capacity(
                cfg, "flink", "grep", columnar=False,
                kind="beam", parallelism=parallelism,
            )
            assert beam.sustainable_rate < native.sustainable_rate

    def test_beam_estimate_includes_runner_overheads(self):
        cfg = config()
        native = estimate_service_rate(cfg, "spark", "grep", kind="native")
        beam = estimate_service_rate(cfg, "spark", "grep", kind="beam")
        assert beam < native


class TestScalabilityReport:
    def test_sweep_shape_order_and_lookups(self):
        cfg = config(capacity=SWEEP)
        report = CapacityRunner(cfg, columnar=False).run_scalability()
        assert [
            (c.system, c.kind, c.query, c.parallelism) for c in report.cells
        ] == [
            ("flink", kind, "grep", p)
            for kind in ("native", "beam")
            for p in (1, 2, 4)
        ]
        assert report.cell("flink", "beam", "grep", 4).parallelism == 4
        curve = report.curve("flink", "native", "grep")
        assert [c.parallelism for c in curve] == [1, 2, 4]
        with pytest.raises(KeyError):
            report.cell("flink", "native", "grep", 8)

    def test_sweep_serial_parallel_bit_identical(self):
        cfg = config(capacity=SWEEP)
        runner = CapacityRunner(cfg, columnar=False)
        serial = runner.run_scalability(parallel=False)
        parallel = runner.run_scalability(parallel=True, workers=2)
        assert serial.cells == parallel.cells

    def test_curves_monotonic_per_kind(self):
        cfg = config(capacity=SWEEP)
        report = CapacityRunner(cfg, columnar=False).run_scalability()
        for kind in ("native", "beam"):
            rates = [
                c.sustainable_rate
                for c in report.curve("flink", kind, "grep")
            ]
            assert rates == sorted(rates)
            assert rates[0] < rates[-1]

    def test_reports_record_effective_parallelism(self):
        from repro.dataflow.sharding import effective_parallelism

        cfg = config(capacity=SWEEP)
        runner = CapacityRunner(cfg, columnar=False)
        assert (
            runner.run_scalability().effective_parallelism
            == effective_parallelism(4)
        )
        assert runner.run().effective_parallelism == effective_parallelism(
            SWEEP.parallelism
        )

    def test_harness_entry_point(self):
        from repro.benchmark.harness import StreamBenchHarness

        cfg = config(
            capacity=CapacitySettings(
                records=2_000,
                queue_bound=500,
                search_iterations=3,
                parallelisms=(1, 2),
                kinds=("native",),
            )
        )
        report = StreamBenchHarness(cfg, columnar=False).run_scalability()
        assert len(report.cells) == 2

    def test_sweep_settings_validation(self):
        with pytest.raises(ValueError):
            CapacitySettings(parallelisms=())
        with pytest.raises(ValueError):
            CapacitySettings(parallelisms=(1, 0))
        with pytest.raises(ValueError):
            CapacitySettings(kinds=())
        with pytest.raises(ValueError):
            CapacitySettings(kinds=("native", "storm"))

    def test_render_scalability(self):
        from repro.benchmark.reporting import render_scalability

        cfg = config(capacity=SWEEP)
        report = CapacityRunner(cfg, columnar=False).run_scalability()
        text = render_scalability(report)
        assert "Scalability curves" in text
        assert "Speedup vs P=1" in text
        assert "1.00x" in text
        assert "host effective shard parallelism" in text
