"""Tests for the repro-streambench CLI."""

import pytest

from repro.benchmark.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.records == 100_000
        assert args.runs == 5
        assert args.systems == ["flink", "spark", "apex"]
        assert not args.full_scale

    def test_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--systems", "storm"])

    def test_custom_arguments(self):
        args = build_parser().parse_args(
            ["--records", "5000", "--runs", "2", "--queries", "grep", "--seed", "1"]
        )
        assert args.records == 5_000
        assert args.queries == ["grep"]


class TestMain:
    def test_small_run_prints_report(self, capsys):
        code = main(
            [
                "--records",
                "2000",
                "--runs",
                "2",
                "--systems",
                "spark",
                "--queries",
                "grep",
                "--parallelisms",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 9" in out
        assert "Table I" in out
        assert "wall time" in out

    def test_plans_mode(self, capsys):
        code = main(["--plans"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 12" in out
        assert "Figure 13" in out
        assert out.count("ParDoTranslation.RawParDo") == 5

    def test_full_matrix_small(self, capsys):
        code = main(["--records", "1000", "--runs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 11" in out
        assert "Table III" in out

    def test_predict_mode(self, capsys):
        code = main(["--predict", "--systems", "apex", "--queries", "grep", "identity"])
        out = capsys.readouterr().out
        assert code == 0
        assert "predicted slowdown factors" in out
        assert "apex" in out
        # stateless queries only; the paper column is shown
        assert "paper" in out
