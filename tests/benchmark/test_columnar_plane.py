"""Columnar-vs-object data-plane bit-identity, end to end.

The columnar plane (slab-direct generation, zero-copy broker adoption,
array-based measurement) is a host-side optimisation only: every simulated
quantity — clock charges, RNG streams, produce sequencing, LogAppendTime
stamps — must be unchanged.  These tests pin that contract for the full
48-cell matrix and for a chaos campaign whose faults actually bite, plus
the unit-level mechanics that make it hold: log slab adoption, sender
window batching and the DoFn adapter's no-copy return path.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.beam.transforms.core import DoFn
from repro.beam.runners.util import DoFnAdapter
from repro.benchmark import BenchmarkConfig, StreamBenchHarness
from repro.benchmark.sender import DataSender
from repro.broker import BrokerCluster, FaultPlan
from repro.broker.faults import NodeOutage
from repro.broker.log import PartitionLog
from repro.dataflow.kernels import SlabColumn
from repro.simtime import SimClock, Simulator
from repro.workloads.columnar import ColumnarWorkload


def run_with_plane(config, columnar, chaos=None):
    """Run the full matrix with the data plane forced via the env knob.

    ``run_matrix`` executes each cell in an isolated world that resolves
    its plane from ``REPRO_COLUMNAR``, so the knob — not just the outer
    harness flag — must be set for the whole campaign.
    """
    mp = pytest.MonkeyPatch()
    try:
        mp.setenv("REPRO_COLUMNAR", "1" if columnar else "0")
        harness = StreamBenchHarness(config, chaos=chaos)
        assert harness.columnar is columnar
        return harness.run_matrix(parallel=False)
    finally:
        mp.undo()


class TestMatrixBitIdentity:
    """The acceptance contract: all 48 grid cells equal per field."""

    @pytest.fixture(scope="class")
    def reports(self):
        config = BenchmarkConfig(records=1_500, runs=2)
        return (
            run_with_plane(config, columnar=False),
            run_with_plane(config, columnar=True),
        )

    def test_covers_full_grid(self, reports):
        objects, _ = reports
        assert len(objects.runs) == 48 * 2

    def test_reports_equal_per_field(self, reports):
        objects, columns = reports
        assert objects.config == columns.config
        assert objects.sender_report == columns.sender_report
        assert objects.runs == columns.runs  # every field of every RunRecord
        assert objects == columns


class TestChaosBitIdentity:
    """Fault-tolerant campaigns agree too — retries, dedup and all."""

    @pytest.fixture(scope="class")
    def reports(self):
        config = BenchmarkConfig(
            records=1_500,
            runs=2,
            systems=("flink", "spark"),
            queries=("grep", "identity"),
        )
        plan = FaultPlan(
            seed=5,
            error_rate=0.05,
            timeout_rate=0.02,
            latency_jitter=0.0005,
            outages=(NodeOutage(node_id=1, start=0.01, duration=0.05),),
        )
        return (
            run_with_plane(config, columnar=False, chaos=plan),
            run_with_plane(config, columnar=True, chaos=plan),
        )

    def test_chaos_reports_equal_per_field(self, reports):
        objects, columns = reports
        assert objects.sender_report == columns.sender_report
        assert objects.runs == columns.runs
        assert objects == columns

    def test_faults_actually_bit(self, reports):
        """The plan produced retries, so the equality is not vacuous."""
        objects, _ = reports
        assert objects.sender_report.retries > 0


class TestHarnessIngestAdoption:
    def _input_log(self, harness):
        harness.ingest()
        topic = harness.broker.topic(harness.config.input_topic)
        return topic.partitions[0]

    def test_columnar_ingest_adopts_slab(self):
        harness = StreamBenchHarness(
            BenchmarkConfig(records=2_000), columnar=True
        )
        log = self._input_log(harness)
        assert type(log._values) is SlabColumn
        assert len(log) == 2_000
        # Zero-copy: the no-copy read hands back the adopted column itself.
        assert log.read_values(0, None, copy=False) is log._values

    def test_object_ingest_stays_list(self):
        harness = StreamBenchHarness(
            BenchmarkConfig(records=2_000), columnar=False
        )
        log = self._input_log(harness)
        assert type(log._values) is list

    def test_planes_store_equal_values_and_timestamps(self):
        config = BenchmarkConfig(records=2_000)
        obj = self._input_log(StreamBenchHarness(config, columnar=False))
        col = self._input_log(StreamBenchHarness(config, columnar=True))
        assert list(col._values) == obj._values
        assert col.read_timestamps(0) == obj.read_timestamps(0)
        assert col.timestamp_bounds() == obj.timestamp_bounds()


@pytest.fixture
def column():
    return ColumnarWorkload.generate(3_000).column()


@pytest.fixture
def log():
    return PartitionLog("t", 0, SimClock())


class TestLogAdoption:
    def test_adopts_fresh_window(self, column, log):
        log.append_batch(column.view(0, 100))
        assert type(log._values) is SlabColumn
        assert log._values is not column  # log-private window
        assert len(log) == 100
        assert log.read_values(0) == column[0:100]

    def test_contiguous_windows_widen_in_place(self, column, log):
        log.append_batch(column.view(0, 100))
        adopted = log._values
        log.append_batch(column.view(100, 250))
        assert log._values is adopted  # same window, grown
        assert len(log) == 250
        assert log.read_values(0) == column[0:250]

    def test_non_contiguous_window_degrades(self, column, log):
        log.append_batch(column.view(0, 100))
        log.append_batch(column.view(500, 600))
        assert type(log._values) is list
        assert log.read_values(0) == column[0:100] + column[500:600]

    def test_foreign_slab_degrades(self, column, log):
        other = ColumnarWorkload.generate(3_000, seed=9).column()
        log.append_batch(column.view(0, 100))
        log.append_batch(other.view(100, 150))
        assert type(log._values) is list
        assert log.read_values(0) == column[0:100] + other[100:150]

    def test_plain_append_after_adoption_degrades(self, column, log):
        log.append_batch(column.view(0, 50))
        log.append("tail")
        assert type(log._values) is list
        assert log.read_values(0) == column[0:50] + ["tail"]

    def test_keyed_batch_after_adoption_degrades(self, column, log):
        log.append_batch(column.view(0, 50))
        log.append_batch(["a", "b"], keys=["k1", "k2"])
        assert type(log._values) is list
        records = log.read(0)
        assert [r.key for r in records] == [None] * 50 + ["k1", "k2"]

    def test_adopted_reads_pad_keys_with_none(self, column, log):
        log.append_batch(column.view(0, 25))
        assert log._keys == []
        assert [r.key for r in log.read(0)] == [None] * 25
        assert [r.key for r in log.iter_all()] == [None] * 25

    def test_adopted_timestamps_follow_clock(self, column):
        clock = SimClock()
        log = PartitionLog("t", 0, clock)
        clock.advance(1.5)
        log.append_batch(column.view(0, 10))
        clock.advance(2.0)
        log.append_batch(column.view(10, 20))
        assert log.timestamp_bounds() == (1.5, 3.5)

    def test_truncate_resets_adopted_log(self, column, log):
        log.append_batch(column.view(0, 50))
        log.truncate()
        assert len(log) == 0
        log.append("x")
        assert log.read_values(0) == ["x"]

    def test_empty_column_batch_is_noop(self, column, log):
        log.append_batch(column.view(0, 0))
        assert len(log) == 0


class TestSenderColumnBatching:
    def _send(self, records):
        cluster = BrokerCluster(Simulator(seed=0), num_nodes=3)
        sender = DataSender(cluster, "in", ingestion_rate=50_000.0)
        report = sender.send(records)
        return report, cluster.topic("in").partitions[0]

    def test_column_send_matches_list_send(self):
        workload = ColumnarWorkload.generate(2_500)
        col_report, col_log = self._send(workload.column())
        obj_report, obj_log = self._send(list(workload.records))
        assert col_report == obj_report
        assert list(col_log._values) == obj_log._values
        assert col_log.read_timestamps(0) == obj_log.read_timestamps(0)

    def test_column_send_adopts_single_window(self):
        workload = ColumnarWorkload.generate(2_500)
        _, log = self._send(workload.column())
        # 1000-record batches over one shared slab widen one adopted window.
        assert type(log._values) is SlabColumn
        assert len(log) == 2_500


class _ListDoFn(DoFn):
    def process(self, value):
        return [value, value]


class _TupleDoFn(DoFn):
    def process(self, value):
        return (value,)


class _GenDoFn(DoFn):
    def process(self, value):
        yield value


class _NoneDoFn(DoFn):
    def process(self, value):
        return None


class TestDoFnAdapterNoCopy:
    def test_list_result_returned_uncopied(self):
        assert DoFnAdapter(_ListDoFn()).process("x") == ["x", "x"]
        # The adapter must hand back the very object the DoFn produced.
        probe = []

        class Probe(DoFn):
            def process(self, value):
                return probe

        assert DoFnAdapter(Probe()).process("x") is probe

    def test_tuple_result_returned_uncopied(self):
        probe = ("x",)

        class Probe(DoFn):
            def process(self, value):
                return probe

        assert DoFnAdapter(Probe()).process("x") is probe

    def test_generator_result_still_listed(self):
        out = DoFnAdapter(_GenDoFn()).process("x")
        assert type(out) is list
        assert out == ["x"]

    def test_none_result_is_empty(self):
        assert list(DoFnAdapter(_NoneDoFn()).process("x")) == []
