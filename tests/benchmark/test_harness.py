"""Tests for the benchmark harness (small scale)."""

import pytest

from repro.benchmark import BenchmarkConfig, StreamBenchHarness
from repro.benchmark.harness import engine_variance
from repro.workloads.aol import expected_grep_matches


def small_config(**overrides):
    defaults = dict(
        records=3_000,
        runs=3,
        parallelisms=(1,),
        systems=("flink",),
        queries=("grep",),
    )
    defaults.update(overrides)
    return BenchmarkConfig(**defaults)


class TestConfig:
    def test_defaults_match_paper(self):
        config = BenchmarkConfig()
        assert config.records == 1_000_001
        assert config.runs == 10
        assert config.parallelisms == (1, 2)
        assert len(config.systems) == 3
        assert len(config.queries) == 4

    def test_invalid_system(self):
        with pytest.raises(ValueError):
            BenchmarkConfig(systems=("storm",))

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            BenchmarkConfig(kinds=("sql",))

    def test_invalid_records(self):
        with pytest.raises(ValueError):
            BenchmarkConfig(records=0)

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            BenchmarkConfig(parallelisms=(0,))

    def test_scaled_config_env(self, monkeypatch):
        from repro.benchmark.config import scaled_config

        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        monkeypatch.delenv("REPRO_RECORDS", raising=False)
        assert scaled_config().records == 100_000
        monkeypatch.setenv("REPRO_RECORDS", "1234")
        assert scaled_config().records == 1234
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        monkeypatch.delenv("REPRO_RECORDS")
        assert scaled_config().records == 1_000_001


class TestIngestion:
    def test_ingest_idempotent(self):
        harness = StreamBenchHarness(small_config())
        first = harness.ingest()
        second = harness.ingest()
        assert first is second
        assert harness.broker.topic(harness.config.input_topic).total_records() == 3_000


class TestRunSetup:
    def test_produces_requested_runs(self):
        harness = StreamBenchHarness(small_config(runs=4))
        records = harness.run_setup("flink", "grep", "native", 1)
        assert len(records) == 4
        assert [r.run_index for r in records] == [1, 2, 3, 4]

    def test_run1_measured_and_rest_synthesized(self):
        harness = StreamBenchHarness(small_config(runs=3))
        records = harness.run_setup("flink", "grep", "native", 1)
        assert records[0].measured is not None
        assert not records[0].synthesized
        assert all(r.synthesized for r in records[1:])

    def test_grep_output_count_correct(self):
        harness = StreamBenchHarness(small_config())
        records = harness.run_setup("flink", "grep", "native", 1)
        assert records[0].records_out == expected_grep_matches(3_000)

    def test_beam_and_native_give_same_outputs(self):
        harness = StreamBenchHarness(small_config(kinds=("native", "beam")))
        native = harness.run_setup("flink", "grep", "native", 1)
        beam_runs = harness.run_setup("flink", "grep", "beam", 1)
        assert native[0].records_out == beam_runs[0].records_out

    def test_measured_close_to_duration(self):
        """The broker-timestamp measurement tracks the engine duration.

        The measured window opens at the first output append (slightly
        after the run start) but also includes the broker-side append
        overheads between emissions, so it sits close to — not exactly at —
        the engine-side duration.
        """
        harness = StreamBenchHarness(small_config(queries=("identity",), records=50_000))
        record = harness.run_setup("flink", "identity", "native", 1)[0]
        assert record.measured == pytest.approx(record.duration, rel=0.25)

    def test_all_systems_run(self):
        for system in ("flink", "spark", "apex"):
            harness = StreamBenchHarness(small_config(systems=(system,)))
            records = harness.run_setup(system, "grep", "native", 1)
            assert records[0].records_out == expected_grep_matches(3_000)
            beam_records = harness.run_setup(system, "grep", "beam", 1)
            assert beam_records[0].records_out == expected_grep_matches(3_000)


class TestFastRepeatEquivalence:
    """fast_repeats must be bit-identical to full re-execution."""

    @pytest.mark.parametrize("system", ["flink", "spark", "apex"])
    @pytest.mark.parametrize("kind", ["native", "beam"])
    def test_durations_identical(self, system, kind):
        fast = StreamBenchHarness(
            small_config(systems=(system,), kinds=(kind,), runs=3, fast_repeats=True)
        )
        full = StreamBenchHarness(
            small_config(systems=(system,), kinds=(kind,), runs=3, fast_repeats=False)
        )
        fast_runs = fast.run_setup(system, "grep", kind, 1)
        full_runs = full.run_setup(system, "grep", kind, 1)
        assert [r.duration for r in fast_runs] == pytest.approx(
            [r.duration for r in full_runs]
        )

    def test_sample_query_durations_identical(self):
        fast = StreamBenchHarness(small_config(queries=("sample",), fast_repeats=True))
        full = StreamBenchHarness(small_config(queries=("sample",), fast_repeats=False))
        fast_runs = fast.run_setup("flink", "sample", "native", 1)
        full_runs = full.run_setup("flink", "sample", "native", 1)
        # run 1 identical always; later runs of the *sample* query may
        # differ in record counts under full re-execution (fresh RNG per
        # run) but the variance draws and hence base-scaled durations match
        # run-for-run within the output-count difference.
        assert fast_runs[0].duration == pytest.approx(full_runs[0].duration)


class TestMatrixAndReport:
    def test_matrix_covers_all_setups(self):
        config = small_config(
            systems=("flink", "spark"),
            queries=("grep", "identity"),
            kinds=("native", "beam"),
            parallelisms=(1, 2),
            runs=2,
        )
        report = StreamBenchHarness(config).run_matrix()
        assert len(report.runs) == 2 * 2 * 2 * 2 * 2

    def test_report_statistics(self):
        config = small_config(kinds=("native", "beam"), runs=3)
        report = StreamBenchHarness(config).run_matrix()
        times = report.times("flink", "grep", "native", 1)
        assert len(times) == 3
        assert report.mean_time("flink", "grep", "native", 1) == pytest.approx(
            sum(times) / 3
        )
        assert report.relative_std("flink", "grep", "native") >= 0
        assert report.slowdown("flink", "grep") > 1

    def test_records_out_lookup(self):
        report = StreamBenchHarness(small_config()).run_matrix()
        assert report.records_out("flink", "grep", "native", 1) == expected_grep_matches(3_000)
        with pytest.raises(KeyError):
            report.records_out("spark", "grep", "native", 1)

    def test_deterministic_under_seed(self):
        a = StreamBenchHarness(small_config(seed=42)).run_matrix()
        b = StreamBenchHarness(small_config(seed=42)).run_matrix()
        assert [r.duration for r in a.runs] == [r.duration for r in b.runs]

    def test_different_seeds_differ(self):
        a = StreamBenchHarness(small_config(seed=42)).run_matrix()
        b = StreamBenchHarness(small_config(seed=43)).run_matrix()
        assert [r.duration for r in a.runs] != [r.duration for r in b.runs]


class TestEngineVariance:
    def test_known_engines(self):
        for system in ("flink", "spark", "apex"):
            assert engine_variance(system) is not None

    def test_unknown_engine(self):
        with pytest.raises(KeyError):
            engine_variance("storm")
