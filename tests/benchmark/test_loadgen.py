"""Tests for repro.benchmark.loadgen: open-loop arrivals + overload policies."""

import random

import pytest

from repro.benchmark.loadgen import (
    BurstyArrivals,
    LoadGenerator,
    UniformArrivals,
    make_arrivals,
)
from repro.benchmark.sender import SenderReport
from repro.broker import AdminClient, BrokerCluster, Consumer, TopicPartition
from repro.engines.common.progress import PumpStalledError
from repro.simtime import Simulator


def make_world(bound=None, seed=11):
    sim = Simulator(seed=seed)
    cluster = BrokerCluster(sim)
    AdminClient(cluster).create_topic("load", max_queue=bound)
    return sim, cluster


def make_drain(cluster, chunk=100, cost_per_record=1e-5):
    """A consumer that processes ``chunk`` records at a fixed unit cost."""
    consumer = Consumer(cluster)
    consumer.assign([TopicPartition("load", 0)])

    def drain():
        values = consumer.poll_values(max_records=chunk)
        if not values:
            return 0
        cluster.simulator.charge(len(values) * cost_per_record)
        consumer.acknowledge()
        return len(values)

    return drain


class TestArrivalProcesses:
    def test_uniform_schedule_is_exact(self):
        process = UniformArrivals(rate=1000.0)
        batches = list(process.schedule(2500, 1000, random.Random(0)))
        assert batches == [(1000, 1.0), (1000, 2.0), (500, 2.5)]

    def test_bursty_long_run_rate_is_exact(self):
        process = BurstyArrivals(rate=1000.0, cycle_records=500)
        batches = list(process.schedule(2000, 200, random.Random(7)))
        assert sum(count for count, _ in batches) == 2000
        # The last cycle's arrivals never overrun the nominal window.
        assert batches[-1][1] <= 2000 / 1000.0 + 1e-9

    def test_bursty_peaks_are_seeded(self):
        process = BurstyArrivals(rate=500.0)
        a = list(process.schedule(1000, 100, random.Random(3)))
        b = list(process.schedule(1000, 100, random.Random(3)))
        assert a == b

    def test_bursty_front_loads_each_cycle(self):
        process = BurstyArrivals(rate=1000.0, cycle_records=1000, burst_factor=4.0)
        batches = list(process.schedule(1000, 500, random.Random(1)))
        # The cycle's records all arrive before its nominal 1.0s window ends.
        assert batches[-1][1] < 1.0

    def test_make_arrivals(self):
        assert make_arrivals("uniform", 10.0).name == "uniform"
        assert make_arrivals("bursty", 10.0).name == "bursty"
        with pytest.raises(ValueError):
            make_arrivals("poisson", 10.0)

    def test_offsets_are_non_decreasing(self):
        for process in (
            UniformArrivals(rate=100.0),
            BurstyArrivals(rate=100.0, cycle_records=300),
        ):
            offsets = [o for _, o in process.schedule(1000, 128, random.Random(2))]
            assert offsets == sorted(offsets)


class TestShedPolicy:
    def test_overload_sheds_with_exact_accounting(self):
        sim, cluster = make_world(bound=500)
        generator = LoadGenerator(
            cluster, "load", target_rate=10_000.0, policy="shed", batch_size=250
        )
        report = generator.run([f"r{i}" for i in range(5000)])
        assert report.records_offered == 5000
        assert report.records_sent == 500  # nothing drained: bound fills once
        assert report.records_shed == 4500
        assert report.reconciles()
        assert report.max_queue_depth <= 500

    def test_shed_never_blocks(self):
        sim, cluster = make_world(bound=100)
        generator = LoadGenerator(
            cluster, "load", target_rate=1000.0, policy="shed"
        )
        report = generator.run([f"r{i}" for i in range(1000)])
        assert report.blocked_seconds == 0.0
        # Open loop: the offer window closes on schedule regardless.
        assert report.duration == pytest.approx(1.0, rel=1e-3)

    def test_unbounded_topic_accepts_everything(self):
        sim, cluster = make_world(bound=None)
        generator = LoadGenerator(
            cluster, "load", target_rate=1000.0, policy="shed"
        )
        report = generator.run([f"r{i}" for i in range(2000)])
        assert report.records_sent == 2000
        assert report.records_shed == 0


class TestBackpressurePolicy:
    def test_blocked_arrivals_wait_for_capacity(self):
        sim, cluster = make_world(bound=400)
        drain = make_drain(cluster, chunk=100, cost_per_record=1e-4)
        generator = LoadGenerator(
            cluster, "load", target_rate=100_000.0, policy="backpressure",
            batch_size=200,
        )
        report = generator.run([f"r{i}" for i in range(3000)], drain=drain)
        assert report.records_sent == 3000
        assert report.records_shed == 0
        assert report.reconciles()
        assert report.max_queue_depth <= 400
        assert report.blocked_seconds > 0.0

    def test_broker_memory_stays_order_bound(self):
        sim, cluster = make_world(bound=300)
        drain = make_drain(cluster, chunk=150)
        generator = LoadGenerator(
            cluster, "load", target_rate=50_000.0, batch_size=150
        )
        generator.run([f"r{i}" for i in range(4000)], drain=drain)
        log = cluster.topic("load").partition(0)
        assert log.end_offset == 4000  # offsets keep counting...
        assert len(log._values) <= 300  # ...resident records do not

    def test_full_queue_without_drain_raises_stall(self):
        sim, cluster = make_world(bound=100)
        generator = LoadGenerator(cluster, "load", target_rate=1000.0)
        with pytest.raises(PumpStalledError) as excinfo:
            generator.run([f"r{i}" for i in range(500)])
        assert excinfo.value.queue_depth == 100

    def test_wedged_drain_raises_stall(self):
        sim, cluster = make_world(bound=100)
        generator = LoadGenerator(cluster, "load", target_rate=1000.0)
        with pytest.raises(PumpStalledError):
            generator.run([f"r{i}" for i in range(500)], drain=lambda: 0)

    def test_sustainable_load_barely_blocks(self):
        sim, cluster = make_world(bound=1000)
        drain = make_drain(cluster, chunk=200, cost_per_record=1e-5)
        generator = LoadGenerator(
            cluster, "load", target_rate=1_000.0, batch_size=200
        )
        report = generator.run([f"r{i}" for i in range(2000)], drain=drain)
        assert report.blocked_seconds == 0.0
        assert report.duration == pytest.approx(2.0, rel=1e-3)

    def test_replays_are_bit_identical(self):
        def run():
            sim, cluster = make_world(bound=200, seed=42)
            drain = make_drain(cluster, chunk=100, cost_per_record=5e-5)
            generator = LoadGenerator(
                cluster, "load", target_rate=20_000.0, process="bursty",
                batch_size=100,
            )
            report = generator.run([f"r{i}" for i in range(2000)], drain=drain)
            return report, sim.now()

        a, now_a = run()
        b, now_b = run()
        assert a == b
        assert now_a == now_b


class TestReportAccounting:
    def test_empty_sender_report_rate_is_zero(self):
        report = SenderReport(
            topic="t", records_sent=0, started_at=5.0, finished_at=5.0
        )
        assert report.achieved_rate == 0.0

    def test_sender_report_offered_accounting(self):
        report = SenderReport(
            topic="t",
            records_sent=10,
            started_at=0.0,
            finished_at=1.0,
            records_offered=10,
        )
        assert report.records_accepted == 10
        assert report.records_offered == report.records_accepted + report.records_shed

    def test_load_report_rates(self):
        sim, cluster = make_world(bound=None)
        generator = LoadGenerator(cluster, "load", target_rate=500.0)
        report = generator.run([f"r{i}" for i in range(1000)])
        assert report.offered_rate == pytest.approx(500.0, rel=1e-3)
        assert report.achieved_rate == pytest.approx(500.0, rel=1e-3)
