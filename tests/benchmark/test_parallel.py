"""Serial-vs-parallel bit-identity of the matrix runner.

The contract that makes ``repro.benchmark.parallel`` a subsystem rather
than a wrapper: fanning the grid out over worker processes must produce a
:class:`BenchmarkReport` **equal per field** — every run record including
synthesised repeats, the sender report, the config — to the serial
reference, for clean and chaos-attached campaigns alike.
"""

from __future__ import annotations

import pytest

from repro.benchmark import BenchmarkConfig, StreamBenchHarness
from repro.benchmark.parallel import (
    CellSpec,
    MatrixRunner,
    default_workers,
    enumerate_cells,
)
from repro.broker import FaultPlan
from repro.broker.faults import NodeOutage


def full_grid_config(**overrides):
    defaults = dict(records=1_500, runs=3)
    defaults.update(overrides)
    return BenchmarkConfig(**defaults)


class TestCellEnumeration:
    def test_grid_order_matches_serial_loop(self):
        config = full_grid_config()
        cells = enumerate_cells(config)
        expected = [
            (s, q, k, p)
            for s in config.systems
            for q in config.queries
            for k in config.kinds
            for p in config.parallelisms
        ]
        assert [(c.system, c.query, c.kind, c.parallelism) for c in cells] == expected
        assert [c.index for c in cells] == list(range(len(expected)))

    def test_full_paper_grid_has_48_cells(self):
        assert len(enumerate_cells(full_grid_config())) == 3 * 4 * 2 * 2

    def test_default_workers_at_least_one(self):
        assert default_workers() >= 1


class TestBitIdentity:
    """The acceptance contract: workers=2 over the full grid == serial."""

    @pytest.fixture(scope="class")
    def config(self):
        return full_grid_config()

    @pytest.fixture(scope="class")
    def serial(self, config):
        return StreamBenchHarness(config).run_matrix(parallel=False)

    @pytest.fixture(scope="class")
    def parallel(self, config):
        return StreamBenchHarness(config).run_matrix(parallel=True, workers=2)

    def test_covers_full_grid(self, config, serial):
        assert len(serial.runs) == 48 * config.runs

    def test_reports_equal_per_field(self, serial, parallel):
        assert serial.config == parallel.config
        assert serial.sender_report == parallel.sender_report
        assert serial.runs == parallel.runs  # every field of every RunRecord
        assert serial == parallel

    def test_synthesized_repeats_included_and_identical(self, config, serial, parallel):
        synthesized = [r for r in serial.runs if r.synthesized]
        assert len(synthesized) == 48 * (config.runs - 1)
        assert synthesized == [r for r in parallel.runs if r.synthesized]

    def test_grid_order_preserved(self, config, serial):
        keys = [(r.system, r.query, r.kind, r.parallelism) for r in serial.runs]
        expected = [
            (c.system, c.query, c.kind, c.parallelism)
            for c in enumerate_cells(config)
            for _ in range(config.runs)
        ]
        assert keys == expected

    def test_run_cell_matches_matrix_slice(self, config, serial):
        """One cell rerun in isolation reproduces its slice of the report."""
        runner = MatrixRunner(config)
        cell = runner.cells()[5]
        records = runner.run_cell(cell)
        start = cell.index * config.runs
        assert records == serial.runs[start : start + config.runs]


class TestChaosBitIdentity:
    """Chaos campaigns fan out identically: every cell world re-attaches
    the same declarative plan, so faults hit each cell reproducibly."""

    @pytest.fixture(scope="class")
    def reports(self):
        config = full_grid_config(
            records=1_500,
            runs=2,
            systems=("flink", "spark"),
            queries=("grep", "identity"),
        )
        # Ingestion appends in batches, so per-operation fault rates need to
        # be fairly high before any roll lands on the few broker calls.
        plan = FaultPlan(
            seed=5,
            error_rate=0.05,
            timeout_rate=0.02,
            latency_jitter=0.0005,
            outages=(NodeOutage(node_id=1, start=0.01, duration=0.05),),
        )
        serial = StreamBenchHarness(config, chaos=plan).run_matrix(parallel=False)
        parallel = StreamBenchHarness(config, chaos=plan).run_matrix(
            parallel=True, workers=2
        )
        return serial, parallel

    def test_chaos_reports_equal_per_field(self, reports):
        serial, parallel = reports
        assert serial.runs == parallel.runs
        assert serial == parallel

    def test_chaos_ingestion_did_retry(self, reports):
        """The fault plan actually bites (the equality above is not vacuous)."""
        serial, _ = reports
        assert serial.sender_report.retries > 0


class TestRunnerPlumbing:
    def test_workers_validated(self):
        runner = MatrixRunner(full_grid_config(systems=("flink",), queries=("grep",)))
        with pytest.raises(ValueError):
            runner.run(parallel=True, workers=0)

    def test_config_workers_validated(self):
        with pytest.raises(ValueError):
            BenchmarkConfig(workers=0)

    def test_config_knobs_drive_run_matrix(self):
        config = full_grid_config(
            systems=("flink",),
            queries=("grep",),
            kinds=("native",),
            parallelisms=(1,),
            parallel=True,
            workers=2,
        )
        parallel_by_config = StreamBenchHarness(config).run_matrix()
        serial = StreamBenchHarness(config).run_matrix(parallel=False)
        assert parallel_by_config.runs == serial.runs

    def test_cellspec_is_slotted_and_picklable(self):
        import pickle

        cell = CellSpec(0, "flink", "grep", "native", 1)
        assert not hasattr(cell, "__dict__")
        assert pickle.loads(pickle.dumps(cell)) == cell

    def test_matrix_runner_standalone(self):
        """MatrixRunner works without a harness (builds its own sender report)."""
        config = full_grid_config(
            systems=("flink",), queries=("grep",), kinds=("native",), parallelisms=(1,)
        )
        report = MatrixRunner(config).run(parallel=False)
        assert report.sender_report is not None
        assert report.sender_report.records_sent == config.records
        assert report == StreamBenchHarness(config).run_matrix(parallel=False)
