"""Tests for the analytic slowdown predictor.

The predictor compiles the same programs the engines execute and evaluates
their cost models over record counts — so for deterministic queries its
prediction must match the executed noise-free ``base_duration`` to
floating-point precision.  That is the test: the measured slowdown factors
are fully explained ("made predictable", as the paper's future work asks)
by the declared cost structure.
"""

import random

import pytest

import repro.beam as beam
from repro.beam.io import kafka
from repro.beam.runners import ApexRunner, FlinkRunner, SparkRunner
from repro.benchmark import DataSender
from repro.benchmark.calibration import PAPER_SLOWDOWN_FACTORS
from repro.benchmark.predictor import Prediction, QueryProfile, SlowdownPredictor
from repro.benchmark.queries import QUERIES
from repro.broker import AdminClient, BrokerCluster
from repro.engines.apex import (
    ApexLauncher,
    DAG,
    FunctionOperator,
    KafkaSinglePortInputOperator,
    KafkaSinglePortOutputOperator,
)
from repro.engines.flink import (
    FlinkCluster,
    KafkaSink,
    KafkaSource,
    StreamExecutionEnvironment,
)
from repro.engines.spark import (
    KafkaUtils,
    SparkCluster,
    SparkConf,
    SparkContext,
    StreamingContext,
)
from repro.simtime import Simulator
from repro.workloads.aol import FULL_SCALE_RECORDS, generate_records
from repro.yarn import YarnCluster

RECORDS = 20_000


@pytest.fixture(scope="module")
def world():
    sim = Simulator(seed=31)
    broker = BrokerCluster(sim)
    admin = AdminClient(broker)
    DataSender(broker, "in").send(generate_records(RECORDS, seed=31))
    return sim, broker, admin


def execute_native(system, sim, broker, admin, spec):
    admin.recreate_topic("out")
    function = spec.make_function(random.Random(0))
    if system == "flink":
        env = StreamExecutionEnvironment(FlinkCluster(sim))
        stream = env.add_source(KafkaSource(broker, "in"))
        if function is not None:
            stream = stream.transform_with(function)
        stream.add_sink(KafkaSink(broker, "out"))
        return env.execute(spec.name)
    if system == "spark":
        sc = SparkContext(SparkConf(), SparkCluster(sim))
        ssc = StreamingContext(sc)
        stream = KafkaUtils.create_direct_stream(ssc, broker, "in")
        if function is not None:
            stream = stream.transform_with(function)
        stream.write_to_kafka(broker, "out")
        job = ssc.run(spec.name)
        sc.stop()
        return job
    dag = DAG(spec.name)
    source = dag.add_operator("in", KafkaSinglePortInputOperator(broker, "in"))
    port = source.output
    if function is not None:
        operator = dag.add_operator("q", FunctionOperator(function))
        dag.add_stream("s", port, operator.input)
        port = operator.output
    sink = dag.add_operator("out", KafkaSinglePortOutputOperator(broker, "out"))
    dag.add_stream("o", port, sink.input)
    return ApexLauncher(YarnCluster(sim)).launch(dag)


def execute_beam(system, sim, broker, admin, spec):
    admin.recreate_topic("out")
    runner = {
        "flink": lambda: FlinkRunner(FlinkCluster(sim)),
        "spark": lambda: SparkRunner(SparkCluster(sim)),
        "apex": lambda: ApexRunner(YarnCluster(sim)),
    }[system]()
    pipeline = beam.Pipeline(runner=runner)
    pcoll = pipeline | kafka.read(broker, "in").without_metadata() | beam.Values()
    transform = spec.make_beam_transform(random.Random(0))
    if transform is not None:
        pcoll = pcoll | transform
    pcoll | kafka.write(broker, "out")
    return pipeline.run().job_result


class TestProfileDerivation:
    def test_identity_profile(self):
        profile = QueryProfile.of(QUERIES["identity"])
        assert not profile.has_operator
        assert profile.selectivity == 1.0

    def test_grep_profile(self):
        profile = QueryProfile.of(QUERIES["grep"])
        assert profile.has_operator
        assert profile.cost_weight == 0.4
        assert profile.rng_draws == 0.0

    def test_sample_profile_declares_rng(self):
        profile = QueryProfile.of(QUERIES["sample"])
        assert profile.rng_draws == 1.0


class TestPredictionMatchesExecution:
    """Prediction == executed base duration, to floating-point precision."""

    @pytest.mark.parametrize("system", ["flink", "spark", "apex"])
    @pytest.mark.parametrize("query", ["identity", "projection", "grep"])
    def test_native(self, world, system, query):
        sim, broker, admin = world
        spec = QUERIES[query]
        job = execute_native(system, sim, broker, admin, spec)
        profile = QueryProfile(
            name=spec.name if spec.make_function(random.Random(0)) is None else
            spec.make_function(random.Random(0)).name,
            selectivity=job.records_out / job.records_in,
            cost_weight=getattr(spec.make_function(random.Random(0)), "cost_weight", 0.0)
            if spec.make_function(random.Random(0)) is not None
            else 0.0,
            rng_draws=0.0,
            has_operator=spec.make_function(random.Random(0)) is not None,
        )
        predictor = SlowdownPredictor()
        prediction = predictor.predict(system, "native", profile, RECORDS)
        assert prediction.seconds == pytest.approx(job.base_duration, rel=1e-9)

    @pytest.mark.parametrize("system", ["flink", "spark", "apex"])
    @pytest.mark.parametrize("query", ["identity", "projection", "grep"])
    def test_beam(self, world, system, query):
        sim, broker, admin = world
        spec = QUERIES[query]
        job = execute_beam(system, sim, broker, admin, spec)
        function = spec.make_function(random.Random(0))
        profile = QueryProfile(
            name=function.name if function is not None else spec.name,
            selectivity=job.records_out / job.records_in,
            cost_weight=function.cost_weight if function is not None else 0.0,
            rng_draws=0.0,
            has_operator=function is not None,
        )
        predictor = SlowdownPredictor()
        prediction = predictor.predict(system, "beam", profile, RECORDS)
        assert prediction.seconds == pytest.approx(job.base_duration, rel=1e-9)

    def test_sample_close_despite_randomness(self, world):
        sim, broker, admin = world
        spec = QUERIES["sample"]
        job = execute_native("flink", sim, broker, admin, spec)
        predictor = SlowdownPredictor()
        prediction = predictor.predict(
            "flink", "native", QueryProfile.of(spec), RECORDS
        )
        # the realised 40% differs from the expectation only slightly
        assert prediction.seconds == pytest.approx(job.base_duration, rel=0.02)


class TestPredictedSlowdowns:
    def test_breakdown_sums_to_total(self):
        predictor = SlowdownPredictor()
        prediction = predictor.predict(
            "flink", "beam", QueryProfile.of(QUERIES["grep"]), 100_000
        )
        assert isinstance(prediction, Prediction)
        assert sum(prediction.per_stage.values()) == pytest.approx(prediction.seconds)

    def test_full_scale_predictions_match_paper_shape(self):
        """The predictor alone — no execution at all — lands in the
        paper's slowdown bands."""
        predictor = SlowdownPredictor()
        expectations = {
            ("apex", "identity"): (30, 70),
            ("apex", "projection"): (30, 70),
            ("apex", "sample"): (15, 45),
            ("apex", "grep"): (0.5, 1.3),
            ("flink", "grep"): (8, 18),
            ("flink", "identity"): (4, 12),
            ("spark", "identity"): (2, 5),
            ("spark", "grep"): (3, 9),
        }
        for (system, query), (low, high) in expectations.items():
            profile = QueryProfile.of(QUERIES[query])
            sf = predictor.predict_slowdown(system, profile, FULL_SCALE_RECORDS)
            paper = PAPER_SLOWDOWN_FACTORS[(system, query)]
            assert low < sf < high, (
                f"sf({system},{query}) predicted {sf:.2f}, paper {paper:.2f}"
            )

    def test_unknown_system_rejected(self):
        predictor = SlowdownPredictor()
        with pytest.raises(ValueError):
            predictor.predict("storm", "native", QueryProfile.of(QUERIES["grep"]), 10)

    def test_unknown_kind_rejected(self):
        predictor = SlowdownPredictor()
        with pytest.raises(ValueError):
            predictor.predict("flink", "sql", QueryProfile.of(QUERIES["grep"]), 10)
