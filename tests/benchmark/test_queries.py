"""Tests for the StreamBench query registry."""

import random

import pytest

import repro.beam as beam
from repro.benchmark.queries import (
    QUERIES,
    SAMPLE_FRACTION,
    get_query,
    stateless_queries,
)
from repro.workloads.aol import GREP_NEEDLE, generate_records


@pytest.fixture
def lines():
    return generate_records(2_000, seed=9)


def apply_function(spec, lines, rng=None):
    fn = spec.make_function(rng or random.Random(0))
    if fn is None:
        return list(lines)
    out = []
    for line in lines:
        out.extend(fn.process(line))
    return out


class TestRegistry:
    def test_get_query_known(self):
        assert get_query("grep").name == "grep"

    def test_get_query_unknown_lists_names(self):
        with pytest.raises(KeyError, match="identity"):
            get_query("nope")

    def test_stateless_queries_order_matches_table2(self):
        assert [q.name for q in stateless_queries()] == [
            "identity",
            "sample",
            "projection",
            "grep",
        ]

    def test_all_eight_streambench_queries_present(self):
        assert len(QUERIES) == 8
        assert sum(1 for q in QUERIES.values() if q.stateful) == 4


class TestStatelessSemantics:
    def test_identity_passes_everything(self, lines):
        assert apply_function(QUERIES["identity"], lines) == lines

    def test_identity_has_no_operator(self):
        assert QUERIES["identity"].make_function(random.Random(0)) is None
        assert QUERIES["identity"].make_beam_transform(random.Random(0)) is None

    def test_sample_keeps_about_forty_percent(self, lines):
        out = apply_function(QUERIES["sample"], lines, random.Random(1))
        assert 0.3 * len(lines) < len(out) < 0.5 * len(lines)

    def test_sample_outputs_are_subsequence(self, lines):
        out = apply_function(QUERIES["sample"], lines, random.Random(1))
        iterator = iter(lines)
        assert all(any(line == kept for line in iterator) for kept in out)

    def test_sample_deterministic_under_rng(self, lines):
        a = apply_function(QUERIES["sample"], lines, random.Random(7))
        b = apply_function(QUERIES["sample"], lines, random.Random(7))
        assert a == b

    def test_sample_declares_rng_draw(self):
        fn = QUERIES["sample"].make_function(random.Random(0))
        assert fn.rng_draws_per_record == 1.0

    def test_projection_extracts_first_column(self, lines):
        out = apply_function(QUERIES["projection"], lines)
        assert out == [line.split("\t")[0] for line in lines]

    def test_projection_weight_is_heaviest(self):
        weights = {
            name: (QUERIES[name].make_function(random.Random(0)) or type("N", (), {"cost_weight": 0})()).cost_weight
            for name in ("sample", "projection", "grep")
        }
        assert weights["projection"] > weights["grep"]
        assert weights["projection"] > weights["sample"]

    def test_grep_matches_needle_lines(self, lines):
        out = apply_function(QUERIES["grep"], lines)
        assert out == [line for line in lines if GREP_NEEDLE in line]

    def test_output_ratio_metadata(self):
        assert QUERIES["identity"].output_ratio == 1.0
        assert QUERIES["sample"].output_ratio == SAMPLE_FRACTION
        assert QUERIES["grep"].output_ratio < 0.01


class TestStatefulSemantics:
    def test_wordcount_running_counts(self):
        spec = QUERIES["wordcount"]
        lines = ["u\tcat dog\tt\t\t", "u\tcat\tt\t\t"]
        out = apply_function(spec, lines)
        assert out == [("cat", 1), ("dog", 1), ("cat", 2)]

    def test_distinct_count_running(self):
        spec = QUERIES["distinct-count"]
        lines = ["u\tq1\tt\t\t", "u\tq2\tt\t\t", "u\tq1\tt\t\t"]
        assert apply_function(spec, lines) == [1, 2, 2]

    def test_statistics_running_min_max_mean(self):
        spec = QUERIES["statistics"]
        lines = ["u\tab\tt\t\t", "u\tabcd\tt\t\t"]
        out = apply_function(spec, lines)
        assert out == [(2.0, 2.0, 2.0), (2.0, 4.0, 3.0)]

    def test_stateful_functions_reset_on_open(self):
        spec = QUERIES["distinct-count"]
        fn = spec.make_function(random.Random(0))
        fn.open()
        list(fn.process("u\tq\tt\t\t"))
        fn.open()
        assert list(fn.process("u\tq\tt\t\t")) == [1]

    def test_stateful_beam_transforms_marked_stateful(self):
        for name in ("wordcount", "distinct-count", "statistics"):
            transform = QUERIES[name].make_beam_transform(random.Random(0))
            assert isinstance(transform, beam.ParDo)
            assert transform.dofn.stateful
