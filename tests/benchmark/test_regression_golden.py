"""Golden regression pin: the calibrated behaviour must not drift silently.

The whole reproduction rests on calibrated cost constants and a
deterministic simulation; an accidental change to either would invalidate
EXPERIMENTS.md without any test noticing, because shape assertions are
deliberately loose.  This test pins the exact mean execution times of a
small campaign.  If it fails after an *intentional* cost-model change:
re-run the full-scale campaign, refresh EXPERIMENTS.md, and regenerate the
golden values with::

    python - <<'PY'
    from repro.benchmark import BenchmarkConfig, StreamBenchHarness
    cfg = BenchmarkConfig(records=5_000, runs=2, parallelisms=(1,))
    report = StreamBenchHarness(cfg).run_matrix()
    for s in cfg.systems:
        for q in cfg.queries:
            for k in cfg.kinds:
                print((s, q, k), repr(report.mean_time(s, q, k, 1)))
    PY
"""

import pytest

from repro.benchmark import BenchmarkConfig, StreamBenchHarness

GOLDEN = {
    ("flink", "identity", "native"): 0.02364148247939103,
    ("flink", "identity", "beam"): 0.15348194084923372,
    ("flink", "sample", "native"): 0.013018915419384467,
    ("flink", "sample", "beam"): 0.12920088017966608,
    ("flink", "projection", "native"): 0.06290708107605868,
    ("flink", "projection", "beam"): 0.17752570501354434,
    ("flink", "grep", "native"): 0.00736263401482025,
    ("flink", "grep", "beam"): 0.08603143696065257,
    ("spark", "identity", "native"): 0.01693537306236758,
    ("spark", "identity", "beam"): 0.03781045871057048,
    ("spark", "sample", "native"): 0.011432363713030434,
    ("spark", "sample", "beam"): 0.06640697225071286,
    ("spark", "projection", "native"): 0.01946478645903488,
    ("spark", "projection", "beam"): 0.052836782502656554,
    ("spark", "grep", "native"): 0.0056859443681081,
    ("spark", "grep", "beam"): 0.027376178526359176,
    ("apex", "identity", "native"): 0.022264788233809986,
    ("apex", "identity", "beam"): 1.1738367594232617,
    ("apex", "sample", "native"): 0.020037128777273802,
    ("apex", "sample", "beam"): 0.5997189211304793,
    ("apex", "projection", "native"): 0.027581672315724504,
    ("apex", "projection", "beam"): 1.1991201397837687,
    ("apex", "grep", "native"): 0.02201082611720255,
    ("apex", "grep", "beam"): 0.019777844635505082,
}


@pytest.fixture(scope="module")
def report():
    config = BenchmarkConfig(records=5_000, runs=2, parallelisms=(1,))
    return StreamBenchHarness(config).run_matrix()


def test_every_cell_matches_golden(report):
    mismatches = {}
    for (system, query, kind), expected in GOLDEN.items():
        actual = report.mean_time(system, query, kind, 1)
        if actual != pytest.approx(expected, rel=1e-12):
            mismatches[(system, query, kind)] = (expected, actual)
    assert not mismatches, (
        "calibrated behaviour drifted — see this module's docstring for the "
        f"refresh procedure: {mismatches}"
    )


def test_golden_covers_full_small_matrix(report):
    assert len(GOLDEN) == 24
