"""Tests for the report renderers."""

import pytest

from repro.benchmark import BenchmarkConfig, StreamBenchHarness
from repro.benchmark.reporting import (
    render_figure10,
    render_figure11,
    render_figure_times,
    render_full_report,
    render_grep_plans,
    render_table1,
    render_table2,
    render_table3,
)


@pytest.fixture(scope="module")
def report():
    config = BenchmarkConfig(
        records=3_000,
        runs=3,
        parallelisms=(1, 2),
        systems=("flink", "spark", "apex"),
        queries=("identity", "sample", "projection", "grep"),
    )
    return StreamBenchHarness(config).run_matrix()


class TestTableRenderers:
    def test_table1_contains_all_systems_and_criteria(self):
        text = render_table1()
        for fragment in (
            "Apache Flink",
            "Apache Spark Streaming",
            "Apache Apex",
            "Tuple-by-tuple",
            "Batch",
            "Exactly-once",
            "Mainly Written in",
        ):
            assert fragment in text

    def test_table2_without_report(self):
        text = render_table2()
        assert "Identity" in text and "Grep" in text
        assert "Observed" not in text

    def test_table2_with_report_shows_counts(self, report):
        text = render_table2(report)
        assert "3000" in text
        assert "Observed output records" in text

    def test_table3_rows(self, report):
        text = render_table3(report)
        assert "P=1" in text and "Paper P=2" in text
        # one row per run plus header rows
        assert len(text.splitlines()) == 3 + report.config.runs


class TestFigureRenderers:
    @pytest.mark.parametrize(
        "query,figure", [("identity", "Figure 6"), ("sample", "Figure 7"),
                         ("projection", "Figure 8"), ("grep", "Figure 9")]
    )
    def test_figure_times_titles(self, report, query, figure):
        text = render_figure_times(report, query)
        assert text.startswith(figure)
        # title + header + separator + 12 setup rows
        assert len(text.splitlines()) == 15
        assert "Flink Beam P1" in text
        assert "Paper" in text

    def test_figure10_has_24_rows(self, report):
        text = render_figure10(report)
        assert len(text.splitlines()) == 3 + 24

    def test_figure11_has_12_rows(self, report):
        text = render_figure11(report)
        assert len(text.splitlines()) == 3 + 12
        assert "Apex Identity" in text

    def test_full_report_contains_everything(self, report):
        text = render_full_report(report)
        for fragment in (
            "Table I",
            "Table II",
            "Figure 6",
            "Figure 9",
            "Figure 10",
            "Figure 11",
            "Table III",
        ):
            assert fragment in text

    def test_partial_config_report_skips_missing(self):
        config = BenchmarkConfig(
            records=2_000,
            runs=2,
            parallelisms=(1,),
            systems=("spark",),
            queries=("grep",),
            kinds=("native",),
        )
        report = StreamBenchHarness(config).run_matrix()
        text = render_full_report(report)
        assert "Figure 9" in text
        assert "Figure 11" not in text  # needs both kinds
        assert "Table III" not in text  # needs flink identity P1+P2


class TestPlanRendering:
    def test_grep_plans_match_figures(self):
        native, translated = render_grep_plans(records=500)
        assert native.count("Parallelism: 1") == 3
        assert "Filter" in native
        assert translated.count("Parallelism: 1") == 7
        assert translated.count("ParDoTranslation.RawParDo") == 5
        assert "PTransformTranslation.UnknownRawPTransform" in translated
