"""Tests for the data sender and the result calculator (Figure 5 phases)."""

import pytest

from repro.benchmark import DataSender, ResultCalculator
from repro.broker import AdminClient, BrokerCluster, Producer
from repro.broker.records import TimestampType
from repro.simtime import Simulator


@pytest.fixture
def world():
    sim = Simulator(seed=2)
    broker = BrokerCluster(sim)
    return sim, broker, AdminClient(broker)


class TestDataSender:
    def test_sends_all_records_in_order(self, world):
        sim, broker, admin = world
        sender = DataSender(broker, "in", ingestion_rate=1000)
        report = sender.send([f"r{i}" for i in range(500)])
        assert report.records_sent == 500
        assert broker.topic("in").partition(0).read_values(0) == [
            f"r{i}" for i in range(500)
        ]

    def test_rate_pacing_spreads_timestamps(self, world):
        sim, broker, admin = world
        sender = DataSender(broker, "in", ingestion_rate=100, batch_size=10)
        report = sender.send([str(i) for i in range(100)])
        assert report.duration == pytest.approx(1.0, rel=0.05)
        log = broker.topic("in").partition(0)
        assert log.last_timestamp() > log.first_timestamp()

    def test_achieved_rate(self, world):
        sim, broker, admin = world
        sender = DataSender(broker, "in", ingestion_rate=1000, batch_size=100)
        report = sender.send([str(i) for i in range(1000)])
        assert report.achieved_rate == pytest.approx(1000, rel=0.1)

    def test_recreates_topic(self, world):
        sim, broker, admin = world
        admin.create_topic("in")
        with Producer(broker) as producer:
            producer.send_values("in", ["old"])
        DataSender(broker, "in").send(["new"])
        assert broker.topic("in").partition(0).read_values(0) == ["new"]

    def test_single_partition_topic(self, world):
        sim, broker, admin = world
        DataSender(broker, "in").send(["a"])
        assert broker.topic("in").num_partitions == 1

    def test_invalid_rate(self, world):
        sim, broker, admin = world
        with pytest.raises(ValueError):
            DataSender(broker, "in", ingestion_rate=0)

    def test_acks_all_supported(self, world):
        sim, broker, admin = world
        report = DataSender(broker, "in", acks="all").send(["a", "b"])
        assert report.records_sent == 2


class TestResultCalculator:
    def test_execution_time_is_first_to_last_append(self, world):
        sim, broker, admin = world
        admin.create_topic("out")
        calculator = ResultCalculator(broker)
        with Producer(broker, batch_size=1) as producer:
            producer.send("out", "first")
            sim.charge(4.0)
            producer.send("out", "middle")
            sim.charge(3.5)
            producer.send("out", "last")
        measurement = calculator.measure("out")
        assert measurement.records == 3
        assert measurement.execution_time == pytest.approx(7.5, abs=0.01)

    def test_empty_topic_zero_time(self, world):
        sim, broker, admin = world
        admin.create_topic("out")
        measurement = ResultCalculator(broker).measure("out")
        assert measurement.records == 0
        assert measurement.execution_time == 0.0

    def test_single_record_zero_time(self, world):
        sim, broker, admin = world
        admin.create_topic("out")
        with Producer(broker) as producer:
            producer.send("out", "only")
        assert ResultCalculator(broker).measure("out").execution_time == 0.0

    def test_rejects_create_time_topics(self, world):
        sim, broker, admin = world
        admin.create_topic("out", timestamp_type=TimestampType.CREATE_TIME)
        with pytest.raises(ValueError):
            ResultCalculator(broker).measure("out")

    def test_spans_partitions(self, world):
        sim, broker, admin = world
        admin.create_topic("out", num_partitions=2)
        topic = broker.topic("out")
        topic.partition(0).append("a")
        sim.charge(2.0)
        topic.partition(1).append("b")
        measurement = ResultCalculator(broker).measure("out")
        assert measurement.records == 2
        assert measurement.execution_time == pytest.approx(2.0)
