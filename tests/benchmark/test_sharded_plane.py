"""Sharded-vs-single-node benchmark bit-identity, end to end.

Broker topology is a *host-side* knob (``REPRO_BROKER_NODES``), exactly
like the columnar data plane: routing partitions through per-node
:class:`~repro.broker.broker.Broker` serving maps must not move a single
simulated quantity.  These tests pin that contract — the full 48-cell
Figure-5 grid and a chaos campaign whose single-node outage actually
bites must produce per-field identical reports on a 1-node and a 4-node
cluster — plus the exact cross-shard accounting of
:meth:`SenderReport.merge`.
"""

from __future__ import annotations

import pytest

from repro.benchmark import BenchmarkConfig, StreamBenchHarness
from repro.benchmark.sender import SenderReport
from repro.broker import FaultPlan
from repro.broker.broker import NODES_ENV
from repro.broker.faults import NodeOutage


def run_with_nodes(config, num_nodes, chaos=None):
    """Run the full matrix with the broker topology forced via the knob.

    ``run_matrix`` executes each cell in an isolated world that resolves
    its cluster size from ``REPRO_BROKER_NODES``, so the knob — not just
    the outer harness argument — must be set for the whole campaign.
    """
    mp = pytest.MonkeyPatch()
    try:
        mp.setenv(NODES_ENV, str(num_nodes))
        harness = StreamBenchHarness(config)
        assert len(harness.broker.nodes) == num_nodes
        return harness.run_matrix(parallel=False)
    finally:
        mp.undo()


class TestTopologyBitIdentity:
    """The acceptance contract: reports do not depend on the topology."""

    @pytest.fixture(scope="class")
    def reports(self):
        config = BenchmarkConfig(records=1_500, runs=2)
        return (
            run_with_nodes(config, num_nodes=1),
            run_with_nodes(config, num_nodes=4),
        )

    def test_covers_full_grid(self, reports):
        single, _ = reports
        assert len(single.runs) == 48 * 2

    def test_reports_equal_per_field(self, reports):
        single, sharded = reports
        assert single.config == sharded.config
        assert single.sender_report == sharded.sender_report
        assert single.runs == sharded.runs  # every field of every RunRecord
        assert single == sharded


class TestTopologyChaosBitIdentity:
    """A node outage among N nodes changes nothing vs the 1-node world.

    The outage targets node 0 — the input topic's leader in *every*
    topology (first topic created, round-robin from node 0) — and its
    window straddles the ingest batch times, so produce requests really
    fail and retry on both clusters.  All topics here are unreplicated,
    so the outage marks the node down without electing new leaders on
    either topology.
    """

    @pytest.fixture(scope="class")
    def reports(self):
        config = BenchmarkConfig(
            records=1_500,
            runs=2,
            systems=("flink", "spark"),
            queries=("grep", "identity"),
        )
        plan = FaultPlan(
            seed=5,
            error_rate=0.05,
            timeout_rate=0.02,
            latency_jitter=0.0005,
            outages=(NodeOutage(node_id=0, start=0.005, duration=0.010),),
        )
        mp = pytest.MonkeyPatch()
        results = []
        try:
            for num_nodes in (1, 4):
                mp.setenv(NODES_ENV, str(num_nodes))
                harness = StreamBenchHarness(config, chaos=plan)
                results.append(harness.run_matrix(parallel=False))
                mp.undo()
        finally:
            mp.undo()
        return tuple(results)

    def test_chaos_reports_equal_per_field(self, reports):
        single, sharded = reports
        assert single.sender_report == sharded.sender_report
        assert single.runs == sharded.runs
        assert single == sharded

    def test_outage_actually_bit(self, reports):
        """The outage produced retries, so the equality is not vacuous."""
        single, _ = reports
        assert single.sender_report.retries > 0


def report(topic="in", sent=10, start=0.0, end=1.0, **kwargs):
    return SenderReport(
        topic=topic,
        records_sent=sent,
        started_at=start,
        finished_at=end,
        records_offered=kwargs.pop("offered", sent),
        **kwargs,
    )


class TestSenderReportMerge:
    def test_sums_counters_exactly(self):
        merged = SenderReport.merge(
            [
                report(sent=10, retries=2, offered=12, records_shed=2),
                report(sent=20, retries=1, duplicates_avoided=3),
            ]
        )
        assert merged.records_sent == 30
        assert merged.records_offered == 32
        assert merged.records_shed == 2
        assert merged.retries == 3
        assert merged.duplicates_avoided == 3
        assert merged.records_offered == merged.records_accepted + merged.records_shed

    def test_window_spans_earliest_to_latest(self):
        merged = SenderReport.merge(
            [report(start=0.5, end=2.0), report(start=0.0, end=1.0)]
        )
        assert merged.started_at == 0.0
        assert merged.finished_at == 2.0
        assert merged.duration == 2.0

    def test_single_report_is_identity(self):
        one = report(sent=7, retries=1)
        assert SenderReport.merge([one]) == one

    def test_mixed_topics_join_names(self):
        merged = SenderReport.merge([report(topic="b"), report(topic="a")])
        assert merged.topic == "a+b"

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            SenderReport.merge([])

    def test_imbalanced_accounting_rejected(self):
        """A shard that under-counts shed records cannot hide in the sum."""
        with pytest.raises(ValueError, match="does not reconcile"):
            SenderReport.merge(
                [report(), report(offered=99)]  # 99 != 10 sent + 0 shed
            )


class TestShardedSendersCompose:
    def test_two_shard_sends_merge_exactly(self, sim):
        """Real per-shard sends reconcile through merge, end to end."""
        from repro.benchmark.sender import DataSender
        from repro.broker import AdminClient, BrokerCluster

        cluster = BrokerCluster(sim, num_nodes=2)
        AdminClient(cluster).create_topic("t", num_partitions=2, num_nodes=2)
        reports = [
            DataSender(cluster, "t", create_topic=False, partition=p).send(
                [f"p{p}-{i}" for i in range(500)]
            )
            for p in range(2)
        ]
        merged = SenderReport.merge(reports)
        assert merged.records_sent == 1_000
        assert merged.records_offered == 1_000
        assert merged.records_shed == 0
        assert cluster.topic("t").total_records() == 1_000
