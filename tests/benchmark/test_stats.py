"""Tests for the paper's statistics formulas."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.benchmark import stats

finite_floats = st.floats(min_value=0.01, max_value=1e6, allow_nan=False)


class TestMeanStd:
    def test_mean(self):
        assert stats.mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty(self):
        with pytest.raises(ValueError):
            stats.mean([])

    def test_std_constant_series(self):
        assert stats.std([5.0, 5.0, 5.0]) == 0.0

    def test_std_known_value(self):
        assert stats.std([2.0, 4.0]) == pytest.approx(1.0)

    def test_relative_std(self):
        assert stats.relative_std([2.0, 4.0]) == pytest.approx(1.0 / 3.0)

    def test_relative_std_zero_mean(self):
        with pytest.raises(ValueError):
            stats.relative_std([0.0, 0.0])

    def test_pooled_relative_std_averages(self):
        pooled = stats.pooled_relative_std([[2.0, 4.0], [5.0, 5.0]])
        assert pooled == pytest.approx((1.0 / 3.0 + 0.0) / 2)

    def test_pooled_skips_empty_series(self):
        assert stats.pooled_relative_std([[2.0, 4.0], []]) == pytest.approx(1.0 / 3.0)

    def test_pooled_all_empty(self):
        with pytest.raises(ValueError):
            stats.pooled_relative_std([[], []])


class TestSlowdownFactor:
    def test_paper_formula(self):
        # sf = mean over parallelisms of beam/native ratio
        sf = stats.slowdown_factor({1: 10.0, 2: 30.0}, {1: 2.0, 2: 3.0})
        assert sf == pytest.approx((5.0 + 10.0) / 2)

    def test_speedup_below_one(self):
        sf = stats.slowdown_factor({1: 1.0}, {1: 2.0})
        assert sf == 0.5

    def test_mismatched_parallelisms(self):
        with pytest.raises(ValueError):
            stats.slowdown_factor({1: 1.0}, {1: 1.0, 2: 1.0})

    def test_empty(self):
        with pytest.raises(ValueError):
            stats.slowdown_factor({}, {})

    def test_non_positive_native(self):
        with pytest.raises(ValueError):
            stats.slowdown_factor({1: 1.0}, {1: 0.0})


class TestProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_relative_std_is_scale_invariant(self, values):
        scaled = [v * 7.5 for v in values]
        assert stats.relative_std(scaled) == pytest.approx(
            stats.relative_std(values), rel=1e-9
        )

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_std_nonnegative(self, values):
        assert stats.std(values) >= 0

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_mean_within_bounds(self, values):
        mu = stats.mean(values)
        tolerance = 1e-9 * max(abs(v) for v in values)
        assert min(values) - tolerance <= mu <= max(values) + tolerance

    @given(
        st.dictionaries(
            st.integers(1, 4), finite_floats, min_size=1, max_size=4
        )
    )
    def test_slowdown_identity_is_one(self, means):
        assert stats.slowdown_factor(means, means) == pytest.approx(1.0)

    @given(
        st.dictionaries(st.integers(1, 4), finite_floats, min_size=1, max_size=4),
        st.floats(min_value=0.1, max_value=100),
    )
    def test_slowdown_scales_linearly_with_beam_times(self, native, factor):
        beam_means = {p: v * factor for p, v in native.items()}
        assert stats.slowdown_factor(beam_means, native) == pytest.approx(factor)
