"""Tests for repro.broker.admin."""

import pytest

from repro.broker import AdminClient, BrokerCluster, Producer
from repro.broker.errors import UnknownTopicError
from repro.broker.records import TimestampType
from repro.simtime import Simulator


@pytest.fixture
def cluster():
    return BrokerCluster(Simulator(seed=1))


@pytest.fixture
def admin(cluster):
    return AdminClient(cluster)


class TestAdmin:
    def test_create_with_paper_defaults(self, admin, cluster):
        admin.create_topic("t")
        description = admin.describe_topic("t")
        assert description.num_partitions == 1
        assert description.replication_factor == 1
        assert description.timestamp_type is TimestampType.LOG_APPEND_TIME

    def test_recreate_drops_data(self, admin, cluster):
        admin.create_topic("t")
        with Producer(cluster) as producer:
            producer.send_values("t", ["a", "b"])
        admin.recreate_topic("t")
        assert cluster.topic("t").total_records() == 0

    def test_recreate_creates_when_missing(self, admin, cluster):
        admin.recreate_topic("fresh")
        assert cluster.has_topic("fresh")

    def test_delete(self, admin, cluster):
        admin.create_topic("t")
        admin.delete_topic("t")
        assert not cluster.has_topic("t")

    def test_describe_unknown(self, admin):
        with pytest.raises(UnknownTopicError):
            admin.describe_topic("missing")

    def test_describe_counts_records(self, admin, cluster):
        admin.create_topic("t")
        with Producer(cluster) as producer:
            producer.send_values("t", ["a", "b", "c"])
        assert admin.describe_topic("t").total_records == 3

    def test_describe_reports_leaders(self, admin):
        admin.create_topic("t", num_partitions=3)
        description = admin.describe_topic("t")
        assert len(description.partition_leaders) == 3
