"""Bounded partitions: queue bounds, consumption watermarks, trimming."""

import pytest

from repro.broker import (
    AdminClient,
    BrokerCluster,
    Consumer,
    Producer,
    QueueFullError,
    TopicPartition,
)
from repro.broker.errors import OffsetOutOfRangeError, RetriableBrokerError
from repro.broker.log import PartitionLog
from repro.simtime import SimClock, Simulator


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def log(clock):
    return PartitionLog("t", 0, clock, max_queue=5)


class TestQueueBound:
    def test_append_beyond_bound_raises(self, log):
        for i in range(5):
            log.append(i)
        with pytest.raises(QueueFullError) as excinfo:
            log.append(5)
        assert excinfo.value.depth == 5
        assert excinfo.value.bound == 5

    def test_queue_full_is_retryable(self):
        assert issubclass(QueueFullError, RetriableBrokerError)

    def test_batch_is_all_or_nothing(self, log):
        log.append_batch([0, 1, 2])
        with pytest.raises(QueueFullError):
            log.append_batch([3, 4, 5])  # only 2 slots free
        assert log.end_offset == 3  # nothing of the failed batch landed

    def test_remaining_capacity(self, log):
        assert log.remaining_capacity() == 5
        log.append_batch([0, 1, 2])
        assert log.remaining_capacity() == 2

    def test_unbounded_log_has_no_capacity_limit(self, clock):
        unbounded = PartitionLog("t", 0, clock)
        assert unbounded.remaining_capacity() is None
        unbounded.append_batch(list(range(1000)))

    def test_bound_validation(self, clock):
        with pytest.raises(ValueError):
            PartitionLog("t", 0, clock, max_queue=0)


class TestConsumptionWatermark:
    def test_mark_consumed_frees_capacity(self, log):
        for i in range(5):
            log.append(i)
        log.mark_consumed(3)
        assert log.queue_depth() == 2
        assert log.remaining_capacity() == 3
        log.append_batch([5, 6, 7])

    def test_watermark_is_monotonic(self, log):
        log.append_batch([0, 1, 2])
        log.mark_consumed(2)
        log.mark_consumed(1)  # going backwards is a no-op
        assert log.consumed_offset == 2

    def test_cannot_consume_beyond_end(self, log):
        log.append(0)
        with pytest.raises(OffsetOutOfRangeError):
            log.mark_consumed(2)

    def test_depth_counts_unconsumed_only(self, log):
        log.append_batch([0, 1, 2, 3])
        assert log.queue_depth() == 4
        log.mark_consumed(4)
        assert log.queue_depth() == 0


class TestTrimming:
    def test_bounded_log_memory_stays_order_bound(self, clock):
        bound = 10
        log = PartitionLog("t", 0, clock, max_queue=bound)
        for i in range(1000):
            log.append(i)
            log.mark_consumed(i + 1)
        # Offsets keep growing, storage does not.
        assert log.end_offset == 1000
        assert log.start_offset == 1000
        assert len(log._values) <= bound

    def test_reads_translate_offsets_after_trim(self, log):
        log.append_batch(["a", "b", "c", "d", "e"])
        log.mark_consumed(3)
        assert log.read_values(3) == ["d", "e"]
        assert log.record_at(4).value == "e"

    def test_reading_trimmed_offsets_raises(self, log):
        log.append_batch(["a", "b", "c"])
        log.mark_consumed(2)
        with pytest.raises(OffsetOutOfRangeError):
            log.read_values(0)

    def test_unbounded_log_never_trims(self, clock):
        log = PartitionLog("t", 0, clock)
        log.append_batch(list(range(100)))
        log.mark_consumed(100)
        assert log.start_offset == 0
        assert log.read_values(0) == list(range(100))

    def test_timestamps_follow_values_through_trim(self, clock, log):
        for i in range(5):
            clock.advance(1.0)
            log.append(i)
        log.mark_consumed(3)
        assert list(log.read_timestamps(3)) == [4.0, 5.0]


class TestProducerFlowControl:
    @pytest.fixture
    def cluster(self):
        sim = Simulator(seed=7)
        c = BrokerCluster(sim)
        AdminClient(c).create_topic("bounded", max_queue=10)
        return c

    def test_producer_send_raises_queue_full(self, cluster):
        producer = Producer(cluster, batch_size=5)
        with pytest.raises(QueueFullError):
            for i in range(20):
                producer.send("bounded", i)
                producer.flush()

    def test_rejected_batch_stays_replayable(self, cluster):
        """QueueFullError must hit BEFORE idempotent sequence registration.

        If the sequence were registered first, the retry after capacity
        frees would look like a duplicate and be silently dropped.
        """
        log = cluster.topic("bounded").partition(0)
        producer = Producer(cluster, batch_size=10, idempotent=True)
        producer.send_values("bounded", list(range(10)))
        with pytest.raises(QueueFullError):
            producer.send_values("bounded", list(range(10, 20)))
        log.mark_consumed(10)  # consumer catches up; capacity frees
        producer.send_values("bounded", list(range(10, 20)))
        values = [r.value for r in log.iter_all()]
        assert values == list(range(10, 20))  # landed once, not dropped
        assert log.end_offset == 20

    def test_lost_ack_replay_bypasses_flow_control(self, cluster):
        """A replayed batch whose records already landed must be
        deduplicated even when the queue is full — its records occupy the
        queue, so rejecting the replay would wedge the producer forever."""
        from repro.broker import FaultPlan, RetryPolicy

        cluster.attach_chaos(FaultPlan(seed=23, timeout_rate=0.5))
        log = cluster.topic("bounded").partition(0)
        producer = Producer(
            cluster,
            batch_size=10,
            idempotent=True,
            retry_policy=RetryPolicy(jitter=0.0),
        )
        # The batch exactly fills the queue; with a 50% lost-ack rate the
        # producer replays it until an acknowledgement arrives.
        producer.send_values("bounded", list(range(10)))
        assert [r.value for r in log.iter_all()] == list(range(10))
        assert log.queue_depth() == 10  # full, and not wedged

    def test_consumer_acknowledge_frees_capacity(self, cluster):
        log = cluster.topic("bounded").partition(0)
        producer = Producer(cluster, batch_size=10)
        producer.send_values("bounded", list(range(10)))
        consumer = Consumer(cluster)
        consumer.assign([TopicPartition("bounded", 0)])
        consumer.poll_values()
        consumer.acknowledge()
        assert log.remaining_capacity() == 10
        producer.send_values("bounded", list(range(10, 20)))

    def test_admin_passes_bound_through(self, cluster):
        AdminClient(cluster).create_topic("b2", num_partitions=2, max_queue=3)
        topic = cluster.topic("b2")
        for p in range(2):
            assert topic.partition(p).remaining_capacity() == 3
