"""Tests for repro.broker.broker and repro.broker.topic."""

import pytest

from repro.broker import BrokerCluster, TopicConfig
from repro.broker.errors import (
    PartitionOutOfRangeError,
    ReplicationError,
    TopicAlreadyExistsError,
    UnknownTopicError,
)
from repro.simtime import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=1)


@pytest.fixture
def cluster(sim):
    return BrokerCluster(sim, num_nodes=3)


class TestTopicConfig:
    def test_defaults_match_paper(self):
        config = TopicConfig()
        assert config.num_partitions == 1
        assert config.replication_factor == 1

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            TopicConfig(num_partitions=0)

    def test_invalid_replication(self):
        with pytest.raises(ValueError):
            TopicConfig(replication_factor=0)


class TestClusterTopics:
    def test_create_and_get(self, cluster):
        topic = cluster.create_topic("t")
        assert cluster.topic("t") is topic
        assert cluster.has_topic("t")

    def test_create_duplicate_raises(self, cluster):
        cluster.create_topic("t")
        with pytest.raises(TopicAlreadyExistsError):
            cluster.create_topic("t")

    def test_unknown_topic_raises(self, cluster):
        with pytest.raises(UnknownTopicError):
            cluster.topic("missing")

    def test_delete_topic(self, cluster):
        cluster.create_topic("t")
        cluster.delete_topic("t")
        assert not cluster.has_topic("t")

    def test_delete_unknown_raises(self, cluster):
        with pytest.raises(UnknownTopicError):
            cluster.delete_topic("missing")

    def test_list_topics_sorted(self, cluster):
        for name in ("zeta", "alpha", "mid"):
            cluster.create_topic(name)
        assert cluster.list_topics() == ["alpha", "mid", "zeta"]

    def test_replication_bounded_by_cluster_size(self, cluster):
        with pytest.raises(ReplicationError):
            cluster.create_topic("t", TopicConfig(replication_factor=4))

    def test_replication_at_cluster_size_ok(self, cluster):
        cluster.create_topic("t", TopicConfig(replication_factor=3))

    def test_multi_partition_topic(self, cluster):
        topic = cluster.create_topic("t", TopicConfig(num_partitions=4))
        assert topic.num_partitions == 4
        with pytest.raises(PartitionOutOfRangeError):
            topic.partition(4)

    def test_partition_leaders_round_robin(self, cluster):
        cluster.create_topic("t", TopicConfig(num_partitions=6))
        leaders = [cluster.partition_leader("t", p).node_id for p in range(6)]
        assert leaders == [0, 1, 2, 0, 1, 2]

    def test_partition_leader_unknown_topic(self, cluster):
        with pytest.raises(UnknownTopicError):
            cluster.partition_leader("missing", 0)

    def test_total_records(self, cluster):
        topic = cluster.create_topic("t", TopicConfig(num_partitions=2))
        topic.partition(0).append("a")
        topic.partition(1).append_batch(["b", "c"])
        assert topic.total_records() == 3

    def test_min_one_node(self, sim):
        with pytest.raises(ValueError):
            BrokerCluster(sim, num_nodes=0)
