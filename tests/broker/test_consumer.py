"""Tests for repro.broker.consumer."""

import pytest

from repro.broker import (
    BrokerCluster,
    Consumer,
    ConsumerGroupCoordinator,
    Producer,
    TopicConfig,
    TopicPartition,
)
from repro.broker.errors import ConsumerClosedError, UnknownTopicError
from repro.simtime import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=1)


@pytest.fixture
def cluster(sim):
    c = BrokerCluster(sim)
    c.create_topic("t")
    with Producer(c) as producer:
        producer.send_values("t", [f"v{i}" for i in range(20)])
    return c


class TestAssignAndPoll:
    def test_poll_returns_records_in_order(self, cluster):
        consumer = Consumer(cluster)
        consumer.assign([TopicPartition("t", 0)])
        records = consumer.poll(max_records=100)
        assert [r.value for r in records] == [f"v{i}" for i in range(20)]

    def test_poll_respects_max_records(self, cluster):
        consumer = Consumer(cluster)
        consumer.assign([TopicPartition("t", 0)])
        assert len(consumer.poll(max_records=7)) == 7
        assert len(consumer.poll(max_records=7)) == 7
        assert len(consumer.poll(max_records=7)) == 6

    def test_poll_empty_after_consuming_all(self, cluster):
        consumer = Consumer(cluster)
        consumer.assign([TopicPartition("t", 0)])
        consumer.poll(max_records=100)
        assert consumer.poll() == []

    def test_poll_invalid_max(self, cluster):
        consumer = Consumer(cluster)
        consumer.assign([TopicPartition("t", 0)])
        with pytest.raises(ValueError):
            consumer.poll(max_records=0)

    def test_assign_unknown_topic(self, cluster):
        consumer = Consumer(cluster)
        with pytest.raises(UnknownTopicError):
            consumer.assign([TopicPartition("missing", 0)])

    def test_poll_sees_new_records(self, cluster):
        consumer = Consumer(cluster)
        consumer.assign([TopicPartition("t", 0)])
        consumer.poll(max_records=100)
        with Producer(cluster) as producer:
            producer.send("t", "late")
        assert [r.value for r in consumer.poll()] == ["late"]

    def test_records_fetched_counter(self, cluster):
        consumer = Consumer(cluster)
        consumer.assign([TopicPartition("t", 0)])
        consumer.poll(max_records=5)
        assert consumer.records_fetched == 5


class TestSeek:
    def test_seek_rewinds(self, cluster):
        tp = TopicPartition("t", 0)
        consumer = Consumer(cluster)
        consumer.assign([tp])
        consumer.poll(max_records=100)
        consumer.seek(tp, 18)
        assert [r.value for r in consumer.poll()] == ["v18", "v19"]

    def test_seek_to_beginning(self, cluster):
        tp = TopicPartition("t", 0)
        consumer = Consumer(cluster)
        consumer.assign([tp])
        consumer.poll(max_records=100)
        consumer.seek_to_beginning()
        assert consumer.position(tp) == 0

    def test_seek_to_end(self, cluster):
        tp = TopicPartition("t", 0)
        consumer = Consumer(cluster)
        consumer.assign([tp])
        consumer.seek_to_end()
        assert consumer.position(tp) == 20
        assert consumer.poll() == []

    def test_position_tracks_poll(self, cluster):
        tp = TopicPartition("t", 0)
        consumer = Consumer(cluster)
        consumer.assign([tp])
        consumer.poll(max_records=4)
        assert consumer.position(tp) == 4

    def test_seek_unassigned_raises(self, cluster):
        consumer = Consumer(cluster)
        with pytest.raises(ValueError):
            consumer.seek(TopicPartition("t", 0), 0)

    def test_seek_negative_offset(self, cluster):
        tp = TopicPartition("t", 0)
        consumer = Consumer(cluster)
        consumer.assign([tp])
        with pytest.raises(ValueError):
            consumer.seek(tp, -1)


class TestConsumerGroups:
    def test_subscribe_requires_group(self, cluster):
        consumer = Consumer(cluster)
        with pytest.raises(ValueError):
            consumer.subscribe(["t"])

    def test_single_member_gets_all_partitions(self, cluster):
        cluster.create_topic("multi", TopicConfig(num_partitions=4))
        group = ConsumerGroupCoordinator("g1")
        consumer = Consumer(cluster, group=group)
        consumer.subscribe(["multi"])
        assert len(consumer.assignment()) == 4

    def test_two_members_split_partitions(self, cluster):
        cluster.create_topic("multi", TopicConfig(num_partitions=4))
        group = ConsumerGroupCoordinator("g1")
        a = Consumer(cluster, group=group)
        a.subscribe(["multi"])
        b = Consumer(cluster, group=group)
        b.subscribe(["multi"])
        assert len(a.assignment()) == 2
        assert len(b.assignment()) == 2
        assert set(a.assignment()) & set(b.assignment()) == set()

    def test_range_assignment_remainder_goes_to_earlier_member(self, cluster):
        cluster.create_topic("multi", TopicConfig(num_partitions=3))
        group = ConsumerGroupCoordinator("g1")
        a = Consumer(cluster, group=group)
        a.subscribe(["multi"])
        b = Consumer(cluster, group=group)
        b.subscribe(["multi"])
        assert len(a.assignment()) == 2
        assert len(b.assignment()) == 1

    def test_member_leave_rebalances(self, cluster):
        cluster.create_topic("multi", TopicConfig(num_partitions=4))
        group = ConsumerGroupCoordinator("g1")
        a = Consumer(cluster, group=group)
        a.subscribe(["multi"])
        b = Consumer(cluster, group=group)
        b.subscribe(["multi"])
        b.close()
        assert len(a.assignment()) == 4

    def test_commit_and_resume_from_committed(self, cluster):
        group = ConsumerGroupCoordinator("g1")
        a = Consumer(cluster, group=group)
        a.subscribe(["t"])
        a.poll(max_records=5)
        a.commit()
        a.close()
        b = Consumer(cluster, group=group)
        b.subscribe(["t"])
        assert b.position(TopicPartition("t", 0)) == 5

    def test_subscribe_unknown_topic(self, cluster):
        group = ConsumerGroupCoordinator("g1")
        consumer = Consumer(cluster, group=group)
        with pytest.raises(UnknownTopicError):
            consumer.subscribe(["missing"])


class TestRebalanceMidConsumption:
    """A member leaving mid-consumption hands its partitions over cleanly."""

    def _drain(self, consumer):
        """Poll until empty; returns {partition: [offsets]} consumed."""
        seen: dict[int, list[int]] = {}
        while True:
            records = consumer.poll(max_records=100)
            if not records:
                return seen
            for r in records:
                seen.setdefault(r.partition, []).append(r.offset)

    def test_survivor_resumes_from_committed_offsets(self, cluster):
        cluster.create_topic("multi", TopicConfig(num_partitions=4))
        with Producer(cluster) as producer:
            for i in range(80):
                producer.send("multi", i, partition=i % 4)
        group = ConsumerGroupCoordinator("g1")
        a = Consumer(cluster, group=group)
        a.subscribe(["multi"])
        b = Consumer(cluster, group=group)
        b.subscribe(["multi"])
        # Both consume part of their share and commit; then b leaves.
        seen_a = {}
        for r in a.poll(max_records=10):
            seen_a.setdefault(r.partition, []).append(r.offset)
        a.commit()
        seen_b = {}
        for r in b.poll(max_records=10):
            seen_b.setdefault(r.partition, []).append(r.offset)
        b.commit()
        b.close()
        # a now owns all four partitions and picks up b's exactly where
        # b committed them.
        assert len(a.assignment()) == 4
        for tp, offset in group.committed.items():
            assert a.position(tp) == offset
        rest = self._drain(a)
        consumed: dict[int, list[int]] = {}
        for part in (seen_a, seen_b, rest):
            for partition, offsets in part.items():
                consumed.setdefault(partition, []).extend(offsets)
        # Union of what a and b consumed: every offset exactly once.
        assert sorted(consumed) == [0, 1, 2, 3]
        for offsets in consumed.values():
            assert offsets == list(range(20))  # no gaps, no duplicates

    def test_uncommitted_records_are_redelivered_not_lost(self, cluster):
        cluster.create_topic("multi", TopicConfig(num_partitions=2))
        with Producer(cluster) as producer:
            for i in range(20):
                producer.send("multi", i, partition=i % 2)
        group = ConsumerGroupCoordinator("g1")
        a = Consumer(cluster, group=group)
        a.subscribe(["multi"])
        b = Consumer(cluster, group=group)
        b.subscribe(["multi"])
        # b consumes without committing, then crashes out of the group.
        uncommitted = b.poll(max_records=4)
        assert uncommitted
        b.close()
        rest = self._drain(a)
        # At-least-once: b's uncommitted offsets come back to a (no gaps).
        for partition, offsets in rest.items():
            assert offsets == list(range(10))


class TestLifecycle:
    def test_poll_after_close_raises(self, cluster):
        consumer = Consumer(cluster)
        consumer.assign([TopicPartition("t", 0)])
        consumer.close()
        with pytest.raises(ConsumerClosedError):
            consumer.poll()

    def test_close_idempotent(self, cluster):
        consumer = Consumer(cluster)
        consumer.close()
        consumer.close()

    def test_context_manager(self, cluster):
        with Consumer(cluster) as consumer:
            consumer.assign([TopicPartition("t", 0)])
        with pytest.raises(ConsumerClosedError):
            consumer.poll()


class TestPollValues:
    """The bulk values fast path: same records, charges and positions as
    ``poll``, without ``ConsumerRecord`` materialization."""

    def test_values_match_poll(self, cluster):
        consumer = Consumer(cluster)
        consumer.assign([TopicPartition("t", 0)])
        assert consumer.poll_values() == [f"v{i}" for i in range(20)]

    def test_respects_max_records(self, cluster):
        consumer = Consumer(cluster)
        consumer.assign([TopicPartition("t", 0)])
        assert consumer.poll_values(max_records=7) == [f"v{i}" for i in range(7)]
        assert consumer.poll_values(max_records=7) == [f"v{i}" for i in range(7, 14)]

    def test_invalid_max_raises(self, cluster):
        consumer = Consumer(cluster)
        consumer.assign([TopicPartition("t", 0)])
        with pytest.raises(ValueError):
            consumer.poll_values(max_records=0)

    def test_advances_position(self, cluster):
        consumer = Consumer(cluster)
        tp = TopicPartition("t", 0)
        consumer.assign([tp])
        consumer.poll_values(max_records=5)
        assert consumer.position(tp) == 5
        consumer.poll_values()
        assert consumer.position(tp) == 20
        assert consumer.poll_values() == []

    def test_with_timestamps_aligned(self, cluster):
        consumer = Consumer(cluster)
        consumer.assign([TopicPartition("t", 0)])
        values, stamps = consumer.poll_values(with_timestamps=True)
        log = cluster.topic("t").partition(0)
        assert len(stamps) == len(values)
        assert list(stamps) == [r.timestamp for r in log.iter_all()]
        assert stamps.typecode == "d"

    def test_charges_equal_poll(self):
        """Same fetched count -> identical simulated clock as ``poll``."""

        def world():
            sim = Simulator(seed=9)
            c = BrokerCluster(sim)
            c.create_topic("t")
            with Producer(c) as producer:
                producer.send_values("t", [f"v{i}" for i in range(50)])
            consumer = Consumer(c)
            consumer.assign([TopicPartition("t", 0)])
            return sim, consumer

        sim_a, consumer_a = world()
        consumer_a.poll(max_records=50)
        sim_b, consumer_b = world()
        consumer_b.poll_values()
        assert sim_a.now() == sim_b.now()
        assert consumer_a.records_fetched == consumer_b.records_fetched

    def test_full_drain_adopts_live_column_zero_copy(self, cluster):
        """An uncapped single-partition drain from offset 0 returns the
        partition log's value column itself — no reference copy."""
        consumer = Consumer(cluster)
        consumer.assign([TopicPartition("t", 0)])
        values = consumer.poll_values()
        assert values is cluster.topic("t").partition(0)._values

    def test_capped_or_resumed_drain_copies(self, cluster):
        consumer = Consumer(cluster)
        consumer.assign([TopicPartition("t", 0)])
        live = cluster.topic("t").partition(0)._values
        assert consumer.poll_values(max_records=5) is not live
        assert consumer.poll_values() is not live  # position is now 5

    def test_timestamp_drain_copies(self, cluster):
        consumer = Consumer(cluster)
        consumer.assign([TopicPartition("t", 0)])
        values, _ = consumer.poll_values(with_timestamps=True)
        assert values is not cluster.topic("t").partition(0)._values

    def test_multi_partition_drain_never_mutates_logs(self, sim):
        """With several partitions the adopted first batch is extended —
        which must never grow a live log column."""
        c = BrokerCluster(sim)
        c.create_topic("m", TopicConfig(num_partitions=2))
        with Producer(c) as producer:
            for i in range(10):
                producer.send("m", f"v{i}", partition=i % 2)
        consumer = Consumer(c)
        consumer.assign([TopicPartition("m", 0), TopicPartition("m", 1)])
        values = consumer.poll_values()
        log0 = c.topic("m").partition(0)
        log1 = c.topic("m").partition(1)
        assert len(log0) == 5 and len(log1) == 5
        assert values is not log0._values and values is not log1._values
        assert sorted(values) == [f"v{i}" for i in range(10)]
