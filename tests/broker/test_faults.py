"""Tests for repro.broker.faults: chaos injection and failover."""

import pytest

from repro.broker import (
    BrokerCluster,
    BrokerUnavailableError,
    Consumer,
    FaultPlan,
    NodeOutage,
    Producer,
    RetryPolicy,
    TopicConfig,
    TopicPartition,
)
from repro.broker.errors import RetriableBrokerError
from repro.simtime import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=1)


@pytest.fixture
def cluster(sim):
    return BrokerCluster(sim)


class TestPlanValidation:
    def test_bad_error_rate(self):
        with pytest.raises(ValueError):
            FaultPlan(error_rate=1.0)

    def test_bad_timeout_rate(self):
        with pytest.raises(ValueError):
            FaultPlan(timeout_rate=-0.1)

    def test_bad_jitter(self):
        with pytest.raises(ValueError):
            FaultPlan(latency_jitter=-1.0)

    def test_bad_outage_duration(self):
        with pytest.raises(ValueError):
            NodeOutage(node_id=0, start=0.0, duration=0.0)


class TestNodeFailover:
    def test_fail_node_moves_replicated_leadership(self, cluster):
        cluster.create_topic("r3", TopicConfig(num_partitions=3, replication_factor=3))
        dead = cluster.partition_leader("r3", 0).node_id
        cluster.fail_node(dead)
        new_leader = cluster.partition_leader("r3", 0)
        assert new_leader.node_id != dead
        assert cluster.node_is_up(new_leader.node_id)
        assert cluster.failovers >= 1

    def test_unreplicated_partition_goes_unavailable(self, cluster):
        cluster.create_topic("r1")  # replication_factor=1
        dead = cluster.partition_leader("r1", 0).node_id
        cluster.fail_node(dead)
        with pytest.raises(BrokerUnavailableError):
            cluster.guard_request("r1", 0)

    def test_recovery_restores_unreplicated_partition(self, cluster):
        cluster.create_topic("r1")
        dead = cluster.partition_leader("r1", 0).node_id
        cluster.fail_node(dead)
        cluster.recover_node(dead)
        cluster.guard_request("r1", 0)  # does not raise

    def test_fail_node_idempotent(self, cluster):
        cluster.create_topic("r3", TopicConfig(replication_factor=3))
        dead = cluster.partition_leader("r3", 0).node_id
        cluster.fail_node(dead)
        failovers = cluster.failovers
        cluster.fail_node(dead)
        assert cluster.failovers == failovers

    def test_unknown_node_raises(self, cluster):
        with pytest.raises(ValueError):
            cluster.fail_node(99)

    def test_produce_rides_over_failover(self, cluster):
        cluster.create_topic("r3", TopicConfig(replication_factor=3))
        with Producer(cluster) as producer:
            producer.send_values("r3", ["a", "b"])
            cluster.fail_node(cluster.partition_leader("r3", 0).node_id)
            producer.send_values("r3", ["c"])
        assert cluster.topic("r3").partition(0).read_values(0) == ["a", "b", "c"]


class TestScheduledOutages:
    def test_outage_applies_at_simulated_time(self, cluster):
        cluster.create_topic("t")
        leader = cluster.partition_leader("t", 0).node_id
        schedule = cluster.attach_chaos(
            FaultPlan(outages=(NodeOutage(node_id=leader, start=5.0, duration=2.0),))
        )
        cluster.guard_request("t", 0)  # before the outage: fine
        cluster.simulator.charge(5.5)
        with pytest.raises(RetriableBrokerError):
            cluster.guard_request("t", 0)
        cluster.simulator.charge(2.0)  # past the recovery point
        cluster.guard_request("t", 0)
        assert schedule.crashes_applied == 1
        assert schedule.recoveries_applied == 1

    def test_schedule_outage_is_relative_to_now(self, cluster):
        cluster.create_topic("t")
        leader = cluster.partition_leader("t", 0).node_id
        schedule = cluster.attach_chaos(FaultPlan())
        cluster.simulator.charge(10.0)
        outage = schedule.schedule_outage(leader, after=1.0, duration=0.5)
        assert outage.start == pytest.approx(11.0)
        cluster.simulator.charge(1.25)
        with pytest.raises(RetriableBrokerError):
            cluster.guard_request("t", 0)

    def test_permanent_crash_never_recovers(self, cluster):
        cluster.create_topic("t")
        leader = cluster.partition_leader("t", 0).node_id
        cluster.attach_chaos(
            FaultPlan(outages=(NodeOutage(node_id=leader, start=0.0),)),
            # produce against a permanently dead rf=1 leader cannot succeed;
            # keep the retry budget tiny so the test stays fast
            retry_policy=RetryPolicy(max_retries=1, delivery_timeout=1.0),
        )
        cluster.simulator.charge(1.0)
        with pytest.raises(RetriableBrokerError):
            cluster.guard_request("t", 0)


class TestTransientFaults:
    def test_error_rate_injects_retriable_errors(self, cluster):
        cluster.create_topic("t")
        cluster.attach_chaos(FaultPlan(seed=3, error_rate=0.5))
        raised = 0
        for _ in range(200):
            try:
                cluster.guard_request("t", 0)
            except RetriableBrokerError:
                raised += 1
        assert 50 < raised < 150  # ~50% of requests

    def test_latency_jitter_charges_simulated_time(self, cluster):
        cluster.create_topic("t")
        schedule = cluster.attach_chaos(FaultPlan(seed=3, latency_jitter=0.01))
        before = cluster.simulator.now()
        for _ in range(50):
            cluster.guard_request("t", 0)
        elapsed = cluster.simulator.now() - before
        assert elapsed > 0.0
        assert elapsed == pytest.approx(schedule.jitter_charged)

    def test_ack_lost_timeouts_fire_after_append(self, cluster):
        cluster.create_topic("t")
        schedule = cluster.attach_chaos(
            FaultPlan(seed=3, timeout_rate=0.3), idempotence=True
        )
        with Producer(cluster, batch_size=1) as producer:
            for i in range(100):
                producer.send("t", i)
        # the producer retried through the lost acks and deduped every replay
        assert schedule.timeouts_injected > 0
        assert producer.retries_performed >= schedule.timeouts_injected
        assert producer.duplicates_avoided > 0
        values = [r.value for r in cluster.topic("t").partition(0).iter_all()]
        assert values == list(range(100))


class TestDeterminism:
    def _run_world(self, chaos_seed):
        sim = Simulator(seed=1)
        cluster = BrokerCluster(sim)
        cluster.create_topic("t")
        leader = cluster.partition_leader("t", 0).node_id
        schedule = cluster.attach_chaos(
            FaultPlan(
                seed=chaos_seed,
                error_rate=0.1,
                timeout_rate=0.1,
                latency_jitter=0.002,
                outages=(NodeOutage(node_id=leader, start=0.05, duration=0.2),),
            )
        )
        with Producer(cluster) as producer:
            for start in range(0, 3000, 100):
                producer.send_values("t", list(range(start, start + 100)))
        consumer = Consumer(cluster)
        consumer.assign([TopicPartition("t", 0)])
        fetched = []
        while True:
            batch = consumer.poll(max_records=500)
            if not batch:
                break
            fetched.extend(r.value for r in batch)
        return (
            sim.now(),
            fetched,
            producer.retries_performed,
            producer.duplicates_avoided,
            schedule.errors_injected,
            schedule.timeouts_injected,
            schedule.jitter_charged,
        )

    def test_same_seed_is_bit_identical(self):
        assert self._run_world(7) == self._run_world(7)

    def test_chaos_world_is_slower_and_lossless(self):
        clean = self._run_world_clean()
        chaotic = self._run_world(7)
        assert chaotic[1] == clean[1]  # same records, exactly once, in order
        assert chaotic[0] > clean[0]  # strictly more simulated time

    def _run_world_clean(self):
        sim = Simulator(seed=1)
        cluster = BrokerCluster(sim)
        cluster.create_topic("t")
        with Producer(cluster) as producer:
            for start in range(0, 3000, 100):
                producer.send_values("t", list(range(start, start + 100)))
        consumer = Consumer(cluster)
        consumer.assign([TopicPartition("t", 0)])
        fetched = []
        while True:
            batch = consumer.poll(max_records=500)
            if not batch:
                break
            fetched.extend(r.value for r in batch)
        return (sim.now(), fetched)
