"""Tests for repro.broker.log."""

from array import array

import pytest

from repro.broker.errors import OffsetOutOfRangeError
from repro.broker.log import PartitionLog
from repro.broker.records import TimestampType
from repro.simtime import SimClock


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def log(clock):
    return PartitionLog("t", 0, clock)


class TestAppend:
    def test_offsets_are_consecutive(self, log):
        assert [log.append(i) for i in range(5)] == [0, 1, 2, 3, 4]

    def test_end_offset_tracks_appends(self, log):
        assert log.end_offset == 0
        log.append("a")
        assert log.end_offset == 1

    def test_log_append_time_stamps_with_clock(self, clock, log):
        clock.advance(2.5)
        log.append("a")
        assert log.record_at(0).timestamp == 2.5

    def test_log_append_time_ignores_producer_timestamp(self, clock, log):
        clock.advance(2.5)
        log.append("a", create_time=99.0)
        assert log.record_at(0).timestamp == 2.5

    def test_create_time_keeps_producer_timestamp(self, clock):
        log = PartitionLog("t", 0, clock, TimestampType.CREATE_TIME)
        log.append("a", create_time=99.0)
        assert log.record_at(0).timestamp == 99.0

    def test_create_time_falls_back_to_clock(self, clock):
        log = PartitionLog("t", 0, clock, TimestampType.CREATE_TIME)
        clock.advance(1.0)
        log.append("a")
        assert log.record_at(0).timestamp == 1.0

    def test_timestamps_monotonic_as_clock_advances(self, clock, log):
        for i in range(10):
            clock.advance(0.5)
            log.append(i)
        stamps = [r.timestamp for r in log.iter_all()]
        assert stamps == sorted(stamps)


class TestAppendBatch:
    def test_batch_shares_append_time(self, clock, log):
        clock.advance(3.0)
        first = log.append_batch(["a", "b", "c"])
        assert first == 0
        assert all(r.timestamp == 3.0 for r in log.iter_all())

    def test_batch_returns_first_offset(self, log):
        log.append("x")
        assert log.append_batch(["a", "b"]) == 1

    def test_batch_with_keys(self, log):
        log.append_batch(["a", "b"], keys=["k1", "k2"])
        assert [r.key for r in log.iter_all()] == ["k1", "k2"]

    def test_batch_key_length_mismatch(self, log):
        with pytest.raises(ValueError):
            log.append_batch(["a"], keys=["k1", "k2"])

    def test_batch_rejected_for_create_time(self, clock):
        log = PartitionLog("t", 0, clock, TimestampType.CREATE_TIME)
        with pytest.raises(ValueError):
            log.append_batch(["a"])


class TestRead:
    def test_read_all(self, log):
        log.append_batch(list(range(5)))
        assert [r.value for r in log.read(0)] == [0, 1, 2, 3, 4]

    def test_read_from_offset(self, log):
        log.append_batch(list(range(5)))
        assert [r.value for r in log.read(3)] == [3, 4]

    def test_read_with_limit(self, log):
        log.append_batch(list(range(5)))
        assert [r.value for r in log.read(1, max_records=2)] == [1, 2]

    def test_read_at_end_returns_empty(self, log):
        log.append("a")
        assert log.read(1) == []

    def test_read_past_end_raises(self, log):
        log.append("a")
        with pytest.raises(OffsetOutOfRangeError):
            log.read(2)

    def test_read_negative_raises(self, log):
        with pytest.raises(OffsetOutOfRangeError):
            log.read(-1)

    def test_read_values_fast_path(self, log):
        log.append_batch(list(range(5)))
        assert log.read_values(2) == [2, 3, 4]
        assert log.read_values(0, max_records=2) == [0, 1]

    def test_record_at_out_of_range(self, log):
        with pytest.raises(OffsetOutOfRangeError):
            log.record_at(0)

    def test_consumer_record_fields(self, clock, log):
        clock.advance(1.0)
        log.append("v", key="k")
        record = log.record_at(0)
        assert record.topic == "t"
        assert record.partition == 0
        assert record.offset == 0
        assert record.key == "k"
        assert record.value == "v"
        assert record.timestamp_type is TimestampType.LOG_APPEND_TIME


class TestTimestampSlab:
    """The timestamp column is a compact ``array('d')``, bit-exact."""

    def test_column_is_a_double_array(self, log):
        log.append_batch(["a", "b"])
        assert isinstance(log._timestamps, array)
        assert log._timestamps.typecode == "d"

    def test_read_timestamps_matches_records(self, clock, log):
        for i in range(6):
            clock.advance(0.1 + i * 0.01)
            log.append(i)
        stamps = log.read_timestamps(0)
        assert list(stamps) == [r.timestamp for r in log.iter_all()]

    def test_read_timestamps_offset_and_limit(self, clock, log):
        for i in range(5):
            clock.advance(1.0)
            log.append(i)
        assert list(log.read_timestamps(2)) == [3.0, 4.0, 5.0]
        assert list(log.read_timestamps(1, max_records=2)) == [2.0, 3.0]

    def test_read_timestamps_bounds(self, log):
        log.append("a")
        with pytest.raises(OffsetOutOfRangeError):
            log.read_timestamps(2)
        with pytest.raises(OffsetOutOfRangeError):
            log.read_timestamps(-1)

    def test_doubles_round_trip_exactly(self, clock, log):
        """array('d') stores C doubles: values read out are bit-identical."""
        awkward = 0.1 + 0.2  # not representable prettily, still exact
        clock.advance(awkward)
        log.append("a")
        assert log.read_timestamps(0)[0] == awkward

    def test_truncate_clears_timestamps(self, clock, log):
        clock.advance(1.0)
        log.append_batch(["a", "b"])
        log.truncate()
        assert len(log) == 0
        assert len(log._timestamps) == 0
        assert log.first_timestamp() is None
        assert log.last_timestamp() is None


class TestZeroCopyRead:
    """``read_values(copy=False)`` hands out the live column itself."""

    def test_full_read_from_zero_returns_live_column(self, log):
        log.append_batch(list(range(5)))
        values = log.read_values(0, copy=False)
        assert values is log._values

    def test_default_read_is_a_copy(self, log):
        log.append_batch(list(range(5)))
        values = log.read_values(0)
        assert values == list(range(5))
        assert values is not log._values

    def test_offset_or_capped_reads_always_copy(self, log):
        log.append_batch(list(range(5)))
        assert log.read_values(1, copy=False) is not log._values
        assert log.read_values(0, max_records=3, copy=False) is not log._values

    def test_live_column_sees_later_appends(self, log):
        """The zero-copy list IS the log: growth is visible (callers that
        requested it treat the list as read-only)."""
        log.append_batch(["a"])
        values = log.read_values(0, copy=False)
        log.append("b")
        assert values == ["a", "b"]


class TestTimestampsAndTruncate:
    def test_first_last_none_when_empty(self, log):
        assert log.first_timestamp() is None
        assert log.last_timestamp() is None

    def test_first_last_timestamps(self, clock, log):
        clock.advance(1.0)
        log.append("a")
        clock.advance(1.0)
        log.append("b")
        assert log.first_timestamp() == 1.0
        assert log.last_timestamp() == 2.0

    def test_truncate_clears(self, log):
        log.append_batch(["a", "b"])
        log.truncate()
        assert len(log) == 0
        assert log.first_timestamp() is None
