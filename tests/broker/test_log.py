"""Tests for repro.broker.log."""

import pytest

from repro.broker.errors import OffsetOutOfRangeError
from repro.broker.log import PartitionLog
from repro.broker.records import TimestampType
from repro.simtime import SimClock


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def log(clock):
    return PartitionLog("t", 0, clock)


class TestAppend:
    def test_offsets_are_consecutive(self, log):
        assert [log.append(i) for i in range(5)] == [0, 1, 2, 3, 4]

    def test_end_offset_tracks_appends(self, log):
        assert log.end_offset == 0
        log.append("a")
        assert log.end_offset == 1

    def test_log_append_time_stamps_with_clock(self, clock, log):
        clock.advance(2.5)
        log.append("a")
        assert log.record_at(0).timestamp == 2.5

    def test_log_append_time_ignores_producer_timestamp(self, clock, log):
        clock.advance(2.5)
        log.append("a", create_time=99.0)
        assert log.record_at(0).timestamp == 2.5

    def test_create_time_keeps_producer_timestamp(self, clock):
        log = PartitionLog("t", 0, clock, TimestampType.CREATE_TIME)
        log.append("a", create_time=99.0)
        assert log.record_at(0).timestamp == 99.0

    def test_create_time_falls_back_to_clock(self, clock):
        log = PartitionLog("t", 0, clock, TimestampType.CREATE_TIME)
        clock.advance(1.0)
        log.append("a")
        assert log.record_at(0).timestamp == 1.0

    def test_timestamps_monotonic_as_clock_advances(self, clock, log):
        for i in range(10):
            clock.advance(0.5)
            log.append(i)
        stamps = [r.timestamp for r in log.iter_all()]
        assert stamps == sorted(stamps)


class TestAppendBatch:
    def test_batch_shares_append_time(self, clock, log):
        clock.advance(3.0)
        first = log.append_batch(["a", "b", "c"])
        assert first == 0
        assert all(r.timestamp == 3.0 for r in log.iter_all())

    def test_batch_returns_first_offset(self, log):
        log.append("x")
        assert log.append_batch(["a", "b"]) == 1

    def test_batch_with_keys(self, log):
        log.append_batch(["a", "b"], keys=["k1", "k2"])
        assert [r.key for r in log.iter_all()] == ["k1", "k2"]

    def test_batch_key_length_mismatch(self, log):
        with pytest.raises(ValueError):
            log.append_batch(["a"], keys=["k1", "k2"])

    def test_batch_rejected_for_create_time(self, clock):
        log = PartitionLog("t", 0, clock, TimestampType.CREATE_TIME)
        with pytest.raises(ValueError):
            log.append_batch(["a"])


class TestRead:
    def test_read_all(self, log):
        log.append_batch(list(range(5)))
        assert [r.value for r in log.read(0)] == [0, 1, 2, 3, 4]

    def test_read_from_offset(self, log):
        log.append_batch(list(range(5)))
        assert [r.value for r in log.read(3)] == [3, 4]

    def test_read_with_limit(self, log):
        log.append_batch(list(range(5)))
        assert [r.value for r in log.read(1, max_records=2)] == [1, 2]

    def test_read_at_end_returns_empty(self, log):
        log.append("a")
        assert log.read(1) == []

    def test_read_past_end_raises(self, log):
        log.append("a")
        with pytest.raises(OffsetOutOfRangeError):
            log.read(2)

    def test_read_negative_raises(self, log):
        with pytest.raises(OffsetOutOfRangeError):
            log.read(-1)

    def test_read_values_fast_path(self, log):
        log.append_batch(list(range(5)))
        assert log.read_values(2) == [2, 3, 4]
        assert log.read_values(0, max_records=2) == [0, 1]

    def test_record_at_out_of_range(self, log):
        with pytest.raises(OffsetOutOfRangeError):
            log.record_at(0)

    def test_consumer_record_fields(self, clock, log):
        clock.advance(1.0)
        log.append("v", key="k")
        record = log.record_at(0)
        assert record.topic == "t"
        assert record.partition == 0
        assert record.offset == 0
        assert record.key == "k"
        assert record.value == "v"
        assert record.timestamp_type is TimestampType.LOG_APPEND_TIME


class TestTimestampsAndTruncate:
    def test_first_last_none_when_empty(self, log):
        assert log.first_timestamp() is None
        assert log.last_timestamp() is None

    def test_first_last_timestamps(self, clock, log):
        clock.advance(1.0)
        log.append("a")
        clock.advance(1.0)
        log.append("b")
        assert log.first_timestamp() == 1.0
        assert log.last_timestamp() == 2.0

    def test_truncate_clears(self, log):
        log.append_batch(["a", "b"])
        log.truncate()
        assert len(log) == 0
        assert log.first_timestamp() is None
