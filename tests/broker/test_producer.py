"""Tests for repro.broker.producer."""

import pytest

from repro.broker import BrokerCluster, Producer, TopicConfig
from repro.broker.errors import ProducerClosedError, TimestampTypeError
from repro.broker.records import TimestampType
from repro.simtime import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=1)


@pytest.fixture
def cluster(sim):
    c = BrokerCluster(sim)
    c.create_topic("t")
    return c


class TestProducerBasics:
    def test_send_and_flush(self, cluster):
        producer = Producer(cluster)
        producer.send("t", "a")
        producer.flush()
        assert cluster.topic("t").total_records() == 1

    def test_batching_defers_append(self, cluster):
        producer = Producer(cluster, batch_size=10)
        for i in range(5):
            producer.send("t", i)
        assert cluster.topic("t").total_records() == 0
        producer.flush()
        assert cluster.topic("t").total_records() == 5

    def test_full_batch_autoflushes(self, cluster):
        producer = Producer(cluster, batch_size=3)
        for i in range(3):
            producer.send("t", i)
        assert cluster.topic("t").total_records() == 3

    def test_close_flushes(self, cluster):
        producer = Producer(cluster)
        producer.send("t", "a")
        producer.close()
        assert cluster.topic("t").total_records() == 1

    def test_context_manager_closes(self, cluster):
        with Producer(cluster) as producer:
            producer.send("t", "a")
        assert cluster.topic("t").total_records() == 1

    def test_context_manager_closes_on_exception(self, cluster):
        with pytest.raises(RuntimeError):
            with Producer(cluster) as producer:
                producer.send("t", "a")
                raise RuntimeError("boom")
        # the buffered record was still flushed on the way out
        assert cluster.topic("t").total_records() == 1
        with pytest.raises(ProducerClosedError):
            producer.send("t", "b")

    def test_send_values_requires_log_append_time(self, cluster):
        cluster.create_topic(
            "ct", TopicConfig(timestamp_type=TimestampType.CREATE_TIME)
        )
        with Producer(cluster) as producer:
            with pytest.raises(TimestampTypeError) as excinfo:
                producer.send_values("ct", ["a"])
        assert "ct" in str(excinfo.value)
        assert "LogAppendTime" in str(excinfo.value)

    def test_send_after_close_raises(self, cluster):
        producer = Producer(cluster)
        producer.close()
        with pytest.raises(ProducerClosedError):
            producer.send("t", "a")

    def test_invalid_acks(self, cluster):
        with pytest.raises(ValueError):
            Producer(cluster, acks=2)

    def test_invalid_batch_size(self, cluster):
        with pytest.raises(ValueError):
            Producer(cluster, batch_size=0)

    def test_records_sent_counter(self, cluster):
        with Producer(cluster) as producer:
            for i in range(7):
                producer.send("t", i)
        assert producer.records_sent == 7


class TestPartitioning:
    def test_explicit_partition(self, cluster):
        cluster.create_topic("multi", TopicConfig(num_partitions=3))
        with Producer(cluster) as producer:
            producer.send("multi", "x", partition=2)
        assert len(cluster.topic("multi").partition(2)) == 1

    def test_keyed_records_stay_in_one_partition(self, cluster):
        cluster.create_topic("multi", TopicConfig(num_partitions=3))
        with Producer(cluster) as producer:
            for _ in range(10):
                producer.send("multi", "v", key="same-key")
        counts = [len(p) for p in cluster.topic("multi").partitions]
        assert sorted(counts) == [0, 0, 10]

    def test_keyless_round_robin_spreads(self, cluster):
        cluster.create_topic("multi", TopicConfig(num_partitions=2))
        with Producer(cluster) as producer:
            for i in range(10):
                producer.send("multi", i)
        counts = [len(p) for p in cluster.topic("multi").partitions]
        assert counts == [5, 5]

    def test_single_partition_preserves_global_order(self, cluster):
        with Producer(cluster, batch_size=4) as producer:
            for i in range(10):
                producer.send("t", i)
        values = [r.value for r in cluster.topic("t").partition(0).iter_all()]
        assert values == list(range(10))


class TestCostsAndTime:
    def test_acks_zero_charges_less_than_acks_one(self, sim):
        def run(acks):
            local_sim = Simulator(seed=1)
            cluster = BrokerCluster(local_sim)
            cluster.create_topic("t")
            with Producer(cluster, acks=acks) as producer:
                producer.send_values("t", list(range(100)))
            return local_sim.now()

        assert run(0) < run(1)

    def test_acks_all_charges_more_than_acks_one(self):
        def run(acks):
            local_sim = Simulator(seed=1)
            cluster = BrokerCluster(local_sim)
            cluster.create_topic("t")
            with Producer(cluster, acks=acks) as producer:
                producer.send_values("t", list(range(1000)))
            return local_sim.now()

        assert run("all") > run(1)

    def test_send_values_equivalent_to_send_loop(self):
        def world():
            local_sim = Simulator(seed=1)
            cluster = BrokerCluster(local_sim)
            cluster.create_topic("t")
            return local_sim, cluster

        sim_a, cluster_a = world()
        with Producer(cluster_a, batch_size=50) as producer:
            for i in range(50):
                producer.send("t", i)
        sim_b, cluster_b = world()
        with Producer(cluster_b, batch_size=50) as producer:
            producer.send_values("t", list(range(50)))
        values_a = cluster_a.topic("t").partition(0).read_values(0)
        values_b = cluster_b.topic("t").partition(0).read_values(0)
        assert values_a == values_b
        assert sim_a.now() == pytest.approx(sim_b.now())
