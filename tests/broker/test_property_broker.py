"""Property-based tests of broker invariants."""

from hypothesis import given, settings, strategies as st

from repro.broker import BrokerCluster, Consumer, Producer, TopicConfig, TopicPartition
from repro.simtime import Simulator

values_strategy = st.lists(
    st.one_of(st.text(max_size=20), st.integers(), st.binary(max_size=10)),
    max_size=200,
)


def make_cluster(num_partitions: int = 1) -> BrokerCluster:
    cluster = BrokerCluster(Simulator(seed=7))
    cluster.create_topic("t", TopicConfig(num_partitions=num_partitions))
    return cluster


class TestBrokerProperties:
    @given(values=values_strategy, batch_size=st.integers(1, 50))
    @settings(max_examples=50, deadline=None)
    def test_everything_sent_is_received_in_order(self, values, batch_size):
        """Single-partition topics preserve exact global order (the paper's
        reason for using one partition)."""
        cluster = make_cluster()
        with Producer(cluster, batch_size=batch_size) as producer:
            for value in values:
                producer.send("t", value)
        consumer = Consumer(cluster)
        consumer.assign([TopicPartition("t", 0)])
        received = []
        while True:
            batch = consumer.poll(max_records=17)
            if not batch:
                break
            received.extend(r.value for r in batch)
        assert received == values

    @given(values=values_strategy, partitions=st.integers(1, 5))
    @settings(max_examples=50, deadline=None)
    def test_no_record_lost_or_duplicated_across_partitions(self, values, partitions):
        cluster = make_cluster(num_partitions=partitions)
        with Producer(cluster) as producer:
            for index, value in enumerate(values):
                producer.send("t", (index, value))
        consumer = Consumer(cluster)
        consumer.assign([TopicPartition("t", p) for p in range(partitions)])
        received = []
        while True:
            batch = consumer.poll(max_records=23)
            if not batch:
                break
            received.extend(r.value for r in batch)
        assert sorted(received) == sorted(enumerate(values))

    @given(values=values_strategy)
    @settings(max_examples=30, deadline=None)
    def test_offsets_are_dense_and_increasing(self, values):
        cluster = make_cluster()
        with Producer(cluster) as producer:
            producer.send_values("t", values)
        offsets = [r.offset for r in cluster.topic("t").partition(0).iter_all()]
        assert offsets == list(range(len(values)))

    @given(
        values=st.lists(st.integers(), min_size=1, max_size=100),
        advances=st.lists(st.floats(0, 5), min_size=1, max_size=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_log_append_timestamps_monotonic(self, values, advances):
        """LogAppendTime never decreases with offset — the property the
        paper's measurement depends on."""
        cluster = make_cluster()
        sim = cluster.simulator
        producer = Producer(cluster, batch_size=7)
        for index, value in enumerate(values):
            if advances and index % 3 == 0:
                sim.charge(advances[index % len(advances)])
            producer.send("t", value)
        producer.close()
        stamps = [r.timestamp for r in cluster.topic("t").partition(0).iter_all()]
        assert stamps == sorted(stamps)

    @given(
        keys=st.lists(st.text(min_size=1, max_size=5), min_size=1, max_size=100),
        partitions=st.integers(1, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_same_key_always_same_partition(self, keys, partitions):
        cluster = make_cluster(num_partitions=partitions)
        with Producer(cluster) as producer:
            for key in keys:
                producer.send("t", "v", key=key)
                producer.send("t", "v", key=key)
        topic = cluster.topic("t")
        placements: dict[str, set[int]] = {}
        for p in range(partitions):
            for record in topic.partition(p).iter_all():
                placements.setdefault(record.key, set()).add(p)
        assert all(len(parts) == 1 for parts in placements.values())
