"""Tests for repro.broker.retry and idempotent produce."""

import pytest

from repro.broker import (
    BrokerCluster,
    DeliveryTimeoutError,
    FaultPlan,
    Producer,
    RetryPolicy,
)
from repro.broker.errors import (
    BrokerUnavailableError,
    QueueFullError,
    RequestTimedOutError,
    RetriableBrokerError,
)
from repro.broker.retry import run_with_retries
from repro.simtime import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=1)


@pytest.fixture
def cluster(sim):
    c = BrokerCluster(sim)
    c.create_topic("t")
    return c


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self, sim):
        policy = RetryPolicy(
            backoff_initial=0.1, backoff_max=0.5, multiplier=2.0, jitter=0.0
        )
        rng = sim.random.stream("x")
        delays = [policy.backoff(i, rng) for i in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_deterministic_under_a_seed(self, sim):
        policy = RetryPolicy(jitter=0.2)
        a = [policy.backoff(i, Simulator(seed=5).random.stream("r")) for i in (1, 2, 3)]
        b = [policy.backoff(i, Simulator(seed=5).random.stream("r")) for i in (1, 2, 3)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_initial=1.0, backoff_max=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(delivery_timeout=0.0)


class TestRunWithRetries:
    def test_charges_backoff_in_simulated_time(self, sim):
        attempts = []

        def flaky():
            attempts.append(sim.now())
            if len(attempts) < 4:
                raise RequestTimedOutError("t", 0)
            return "ok"

        policy = RetryPolicy(backoff_initial=0.1, multiplier=2.0, jitter=0.0)
        result = run_with_retries(sim, policy, sim.random.stream("r"), flaky)
        assert result == "ok"
        assert sim.now() == pytest.approx(0.1 + 0.2 + 0.4)

    def test_exhaustion_raises_delivery_timeout(self, sim):
        def always_down():
            raise BrokerUnavailableError("t", 0, 0)

        policy = RetryPolicy(max_retries=3, jitter=0.0)
        with pytest.raises(DeliveryTimeoutError) as excinfo:
            run_with_retries(sim, policy, sim.random.stream("r"), always_down)
        assert excinfo.value.attempts == 4
        assert isinstance(excinfo.value.__cause__, BrokerUnavailableError)

    def test_delivery_timeout_bounds_total_delay(self, sim):
        def always_down():
            raise BrokerUnavailableError("t", 0, 0)

        policy = RetryPolicy(
            max_retries=1000, backoff_initial=0.5, backoff_max=0.5,
            jitter=0.0, delivery_timeout=2.0,
        )
        with pytest.raises(DeliveryTimeoutError):
            run_with_retries(sim, policy, sim.random.stream("r"), always_down)
        assert sim.now() <= 2.0

    def test_non_retriable_errors_propagate(self, sim):
        def boom():
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            run_with_retries(sim, RetryPolicy(), sim.random.stream("r"), boom)


class TestQueueFullClassification:
    """QueueFullError is transient flow control, not a hard failure."""

    def test_is_retriable(self):
        assert issubclass(QueueFullError, RetriableBrokerError)

    def test_retried_with_simtime_backoff(self, sim):
        """A full queue that drains mid-retry succeeds, with the backoff
        schedule charged to the simulated clock."""
        attempts = []

        def produce():
            attempts.append(sim.now())
            if len(attempts) < 3:
                raise QueueFullError("t", 0, depth=5, bound=5, count=1)
            return "landed"

        policy = RetryPolicy(backoff_initial=0.1, multiplier=2.0, jitter=0.0)
        result = run_with_retries(sim, policy, sim.random.stream("r"), produce)
        assert result == "landed"
        assert attempts == [pytest.approx(0.0), pytest.approx(0.1), pytest.approx(0.3)]

    def test_backoff_schedule_with_jitter_is_seeded(self, sim):
        policy = RetryPolicy(backoff_initial=0.05, multiplier=2.0, jitter=0.1)
        a = [
            policy.backoff(i, Simulator(seed=9).random.stream("r"))
            for i in (1, 2, 3, 4)
        ]
        b = [
            policy.backoff(i, Simulator(seed=9).random.stream("r"))
            for i in (1, 2, 3, 4)
        ]
        assert a == b
        # Jittered delays stay within ±10% of the nominal exponential curve.
        for index, delay in enumerate(a, start=1):
            nominal = min(2.0, 0.05 * 2.0 ** (index - 1))
            assert nominal * 0.9 <= delay <= nominal * 1.1

    def test_exhaustion_surfaces_queue_full_as_cause(self, sim):
        def always_full():
            raise QueueFullError("t", 0, depth=5, bound=5, count=1)

        policy = RetryPolicy(max_retries=2, jitter=0.0)
        with pytest.raises(DeliveryTimeoutError) as excinfo:
            run_with_retries(sim, policy, sim.random.stream("r"), always_full)
        assert isinstance(excinfo.value.__cause__, QueueFullError)


class TestIdempotentProduce:
    def test_producer_ids_are_unique(self, cluster):
        a = Producer(cluster)
        b = Producer(cluster)
        assert a.producer_id != b.producer_id

    def test_duplicate_batch_is_deduplicated(self, cluster):
        log = cluster.topic("t").partition(0)
        assert log.register_producer_batch(producer_id=0, base_sequence=0, count=5)
        assert not log.register_producer_batch(producer_id=0, base_sequence=0, count=5)
        assert log.register_producer_batch(producer_id=0, base_sequence=5, count=5)

    def test_sequences_are_per_producer(self, cluster):
        log = cluster.topic("t").partition(0)
        assert log.register_producer_batch(producer_id=0, base_sequence=0, count=5)
        assert log.register_producer_batch(producer_id=1, base_sequence=0, count=5)

    def test_lost_ack_without_idempotence_duplicates(self, cluster):
        cluster.attach_chaos(
            FaultPlan(seed=11, timeout_rate=0.4), idempotence=False
        )
        with Producer(cluster, batch_size=10, idempotent=False) as producer:
            for i in range(100):
                producer.send("t", i)
        total = cluster.topic("t").total_records()
        assert total > 100  # replays landed twice: at-least-once
        assert producer.duplicates_avoided == 0

    def test_lost_ack_with_idempotence_is_exactly_once(self, cluster):
        cluster.attach_chaos(FaultPlan(seed=11, timeout_rate=0.4))
        with Producer(cluster, batch_size=10, idempotent=True) as producer:
            for i in range(100):
                producer.send("t", i)
        values = [r.value for r in cluster.topic("t").partition(0).iter_all()]
        assert values == list(range(100))
        assert producer.duplicates_avoided > 0

    def test_retries_param_builds_policy(self, cluster):
        producer = Producer(cluster, retries=3, delivery_timeout=9.0)
        assert producer.retry_policy is not None
        assert producer.retry_policy.max_retries == 3
        assert producer.retry_policy.delivery_timeout == 9.0

    def test_cluster_defaults_apply_after_attach_chaos(self, cluster):
        cluster.attach_chaos(FaultPlan(seed=1))
        producer = Producer(cluster)
        assert producer.retry_policy is not None
        assert producer.idempotent

    def test_explicit_settings_override_cluster_defaults(self, cluster):
        cluster.attach_chaos(FaultPlan(seed=1))
        policy = RetryPolicy(max_retries=1)
        producer = Producer(cluster, retry_policy=policy, idempotent=False)
        assert producer.retry_policy is policy
        assert not producer.idempotent
