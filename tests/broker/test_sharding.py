"""Sharded topic placement and per-node broker routing.

The scale-out data plane shards a topic's partitions over broker nodes:
``AdminClient.create_topic(num_nodes=k)`` spreads partitions round-robin
over the first ``k`` nodes, ``shard_map`` pins placement explicitly, and
every produce/fetch resolves its partition log through the *hosting*
:class:`~repro.broker.broker.Broker`'s serving map.  Routing is a
host-side concern only — the same :class:`PartitionLog` objects serve
every topology — and failover moves hosting together with leadership.
"""

from __future__ import annotations

import pytest

from repro.broker import (
    AdminClient,
    Broker,
    BrokerCluster,
    Consumer,
    Producer,
    TopicPartition,
    default_num_nodes,
)
from repro.broker.broker import NODES_ENV
from repro.broker.errors import NotLeaderForPartitionError
from repro.broker.topic import TopicConfig


@pytest.fixture
def cluster(sim):
    return BrokerCluster(sim, num_nodes=4)


@pytest.fixture
def admin(cluster):
    return AdminClient(cluster)


class TestShardedPlacement:
    def test_num_nodes_spreads_partitions_round_robin(self, cluster, admin):
        admin.create_topic("t", num_partitions=6, num_nodes=3)
        leaders = [cluster.partition_leader("t", p).node_id for p in range(6)]
        assert leaders == [0, 1, 2, 0, 1, 2]

    def test_shard_map_pins_placement_explicitly(self, cluster, admin):
        admin.create_topic("t", num_partitions=3, shard_map=(2, 2, 0))
        leaders = [cluster.partition_leader("t", p).node_id for p in range(3)]
        assert leaders == [2, 2, 0]

    def test_sharded_topic_does_not_perturb_round_robin_cursor(
        self, cluster, admin
    ):
        """Explicit placement must not advance the default leader cursor.

        A later unsharded topic gets the same leaders whether or not a
        sharded topic was created before it — the precondition for
        bit-identical reports across topologies.
        """
        admin.create_topic("sharded", num_partitions=4, num_nodes=4)
        admin.create_topic("plain")
        assert cluster.partition_leader("plain", 0).node_id == 0

    def test_num_nodes_one_pins_everything_to_node_zero(self, cluster, admin):
        admin.create_topic("t", num_partitions=3, num_nodes=1)
        leaders = [cluster.partition_leader("t", p).node_id for p in range(3)]
        assert leaders == [0, 0, 0]

    def test_num_nodes_must_fit_cluster(self, admin):
        with pytest.raises(ValueError, match="exceeds cluster size"):
            admin.create_topic("t", num_partitions=2, num_nodes=5)

    def test_num_nodes_must_be_positive(self, admin):
        with pytest.raises(ValueError, match="num_nodes must be >= 1"):
            admin.create_topic("t", num_nodes=0)

    def test_num_nodes_and_shard_map_are_exclusive(self, admin):
        with pytest.raises(ValueError, match="not both"):
            admin.create_topic("t", num_nodes=2, shard_map=(0,))

    def test_shard_map_length_must_match_partitions(self):
        with pytest.raises(ValueError, match="shard_map names 2 partitions"):
            TopicConfig(num_partitions=3, shard_map=(0, 1))

    def test_shard_map_rejects_negative_node_ids(self):
        with pytest.raises(ValueError, match=">= 0"):
            TopicConfig(num_partitions=2, shard_map=(0, -1))

    def test_shard_map_rejects_unknown_node_ids(self, cluster):
        with pytest.raises(ValueError, match="unknown node ids"):
            cluster.create_topic(
                "t", TopicConfig(num_partitions=2, shard_map=(0, 9))
            )


class TestBrokerServingMap:
    def test_each_node_hosts_its_shard(self, cluster, admin):
        admin.create_topic("t", num_partitions=4, num_nodes=4)
        for node_id in range(4):
            assert cluster.brokers[node_id].hosted_partitions() == [
                ("t", node_id)
            ]

    def test_partition_log_routes_to_same_object(self, cluster, admin):
        topic = admin.create_topic("t", num_partitions=4, num_nodes=2)
        for p in range(4):
            assert cluster.partition_log("t", p) is topic.partitions[p]

    def test_non_leader_rejects_lookup(self, cluster, admin):
        admin.create_topic("t", num_partitions=2, num_nodes=2)
        with pytest.raises(NotLeaderForPartitionError):
            cluster.brokers[1].partition_log("t", 0)

    def test_delete_topic_drops_hosting_everywhere(self, cluster, admin):
        admin.create_topic("t", num_partitions=4, num_nodes=4)
        admin.delete_topic("t")
        for broker in cluster.brokers.values():
            assert broker.hosted_partitions() == []

    def test_repr_counts_partitions(self, cluster, admin):
        admin.create_topic("t", num_partitions=4, num_nodes=1)
        assert "partitions=4" in repr(cluster.brokers[0])
        assert isinstance(cluster.brokers[0], Broker)


class TestFailoverMovesHosting:
    def test_replicated_partition_hosting_follows_leadership(
        self, cluster, admin
    ):
        topic = admin.create_topic(
            "t", num_partitions=2, num_nodes=2, replication_factor=2
        )
        assert cluster.brokers[0].hosts("t", 0)
        cluster.fail_node(0)
        # Leadership moved to the next alive node; so did the hosting of
        # the very same log object (replica promotion, not data copy).
        successor = cluster.partition_leader("t", 0)
        assert successor.node_id == 1
        assert not cluster.brokers[0].hosts("t", 0)
        assert cluster.brokers[1].partition_log("t", 0) is topic.partitions[0]

    def test_unreplicated_partition_stays_on_dead_node(self, cluster, admin):
        admin.create_topic("t", num_partitions=2, num_nodes=2)
        cluster.fail_node(0)
        # rf=1: no failover — the dead node still hosts, requests fail at
        # the liveness guard instead of the routing layer.
        assert cluster.brokers[0].hosts("t", 0)
        assert cluster.partition_leader("t", 0).node_id == 0


class TestShardedProduceConsume:
    def test_produce_and_fetch_through_shards(self, cluster, admin):
        admin.create_topic("t", num_partitions=3, num_nodes=3)
        producer = Producer(cluster)
        for p in range(3):
            producer.send_values("t", [f"r{p}-{i}" for i in range(5)], partition=p)
        consumer = Consumer(cluster)
        consumer.assign([TopicPartition("t", p) for p in range(3)])
        records = consumer.poll(max_records=100)
        values = sorted(r.value for r in records)
        assert values == sorted(f"r{p}-{i}" for p in range(3) for i in range(5))

    def test_idempotent_produce_is_per_node(self, cluster, admin):
        """Sequence bookkeeping lives in the log, wherever it is hosted."""
        admin.create_topic("t", num_partitions=2, num_nodes=2)
        producer = Producer(cluster, idempotent=True)
        producer.send_values("t", ["a", "b"], partition=0)
        producer.send_values("t", ["c"], partition=1)
        log0 = cluster.partition_log("t", 0)
        log1 = cluster.partition_log("t", 1)
        # Replays are recognised per partition log on its hosting node.
        assert log0.is_replay(producer.producer_id, 0)
        assert log1.is_replay(producer.producer_id, 0)
        assert not log1.is_replay(producer.producer_id, 1)


class TestDefaultNumNodes:
    def test_default_is_three(self, monkeypatch):
        monkeypatch.delenv(NODES_ENV, raising=False)
        assert default_num_nodes() == 3

    def test_env_knob_overrides(self, monkeypatch):
        monkeypatch.setenv(NODES_ENV, "5")
        assert default_num_nodes() == 5

    def test_invalid_values_fall_back(self, monkeypatch):
        for raw in ("zero", "", "0", "-2"):
            monkeypatch.setenv(NODES_ENV, raw)
            assert default_num_nodes() == 3
