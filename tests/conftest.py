"""Shared fixtures."""

import pytest

from repro.broker import AdminClient, BrokerCluster, Producer
from repro.simtime import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=1234)


@pytest.fixture
def broker(sim: Simulator) -> BrokerCluster:
    return BrokerCluster(sim, num_nodes=3)


@pytest.fixture
def admin(broker: BrokerCluster) -> AdminClient:
    return AdminClient(broker)


@pytest.fixture
def ingested_lines(sim, broker, admin) -> list[str]:
    """A small ingested input topic 'in'; returns the sent lines."""
    admin.create_topic("in")
    lines = [
        f"user{i}\tquery {'test' if i % 10 == 0 else 'word'} {i}\t2006-03-01 00:00:00\t\t"
        for i in range(1_000)
    ]
    with Producer(broker) as producer:
        producer.send_values("in", lines)
    return lines
