"""Unit tests for the plan compiler (``repro.dataflow.compiler``).

:func:`lower_stage` is the pump's single lowering entry point; these
tests pin its segmentation rules — kernel runs, batch runs for spec-less
parts, peephole wire fusion — and that every lowered shape computes
exactly what ``ComposedFunction.process_batch`` computes.
"""

from __future__ import annotations

import random

import pytest

import repro.dataflow.kernels as kernels
from repro.dataflow.compiler import BatchSegment, SegmentKernel, lower_stage
from repro.dataflow.functions import (
    FilterFunction,
    IdentityFunction,
    MapFunction,
    compose,
)
from repro.dataflow.kernels import ChainKernel, GrepKernel, KernelSpec
from repro.dataflow.sharding import QUERY_PARALLELISM_ENV

np = pytest.importorskip("numpy")


@pytest.fixture(autouse=True)
def _serial_lowering(monkeypatch):
    # These tests pin the lowering *shapes* (which exact kernel class each
    # stage compiles to), so they must see the serial plan even when the
    # suite runs with REPRO_QUERY_PARALLELISM forced on.  The shard plane's
    # wrapping of these kernels is covered by tests/dataflow/test_sharding.py
    # and tests/engines/test_query_parallel.py.
    monkeypatch.setenv(QUERY_PARALLELISM_ENV, "1")


def grep_fn(needle="xx"):
    return FilterFunction(
        lambda v: needle in v, name="Grep", kernel_spec=KernelSpec.contains(needle)
    )


def upper_fn():
    return MapFunction(str.upper, name="Upper")  # deliberately spec-less


class TestLowerStage:
    def test_none_function_lowers_to_none(self):
        assert lower_stage(None) is None

    def test_specless_function_lowers_to_none(self):
        assert lower_stage(upper_fn()) is None

    def test_single_spec_lowers_to_kernel(self):
        assert isinstance(lower_stage(grep_fn()), GrepKernel)

    def test_all_specless_composition_lowers_to_none(self):
        """Nothing to gain over the composed batch path."""
        assert lower_stage(compose([upper_fn(), upper_fn()])) is None

    def test_all_specced_composition_lowers_to_chain(self):
        rng = random.Random(1)
        fn = compose(
            [
                FilterFunction(
                    lambda v: rng.random() < 0.5,
                    kernel_spec=KernelSpec.bernoulli(0.5, rng),
                ),
                grep_fn(),
            ]
        )
        kernel = lower_stage(fn)
        assert isinstance(kernel, ChainKernel)


class TestMixedSegmentation:
    def test_mixed_chain_segments_and_matches_batch(self):
        """specced | opaque | specced -> kernel, batch, kernel segments,
        computing exactly what the composed batch path computes."""
        fn = compose([grep_fn("a"), upper_fn(), grep_fn("A")])
        kernel = lower_stage(fn)
        assert isinstance(kernel, SegmentKernel)
        assert len(kernel.segments) == 3
        assert isinstance(kernel.segments[1], BatchSegment)
        values = ["alpha", "beta", "nope", "gamma"] * 30
        assert kernel(values) == fn.process_batch(values)

    def test_adjacent_opaque_parts_share_one_batch_segment(self):
        fn = compose([upper_fn(), upper_fn(), grep_fn("A")])
        kernel = lower_stage(fn)
        assert isinstance(kernel, SegmentKernel)
        assert len(kernel.segments) == 2
        assert isinstance(kernel.segments[0], BatchSegment)
        assert len(kernel.segments[0].parts) == 2

    def test_single_segment_unwrapped(self):
        """A lone trailing batch run after fused specs still segments, but
        one segment total returns unwrapped."""
        fn = compose([grep_fn("a"), IdentityFunction()])
        kernel = lower_stage(fn)
        assert isinstance(kernel, GrepKernel)

    def test_empty_chunk_short_circuits(self):
        calls = []

        class Spy(MapFunction):
            def process_batch(self, values):
                calls.append(len(values))
                return super().process_batch(values)

        fn = compose([grep_fn("zzz"), Spy(str.upper)])
        kernel = lower_stage(fn)
        assert kernel(["nope", "nada"]) == []
        assert calls == []  # downstream segment never ran

    def test_describe_names_segments(self):
        fn = compose([grep_fn("a"), upper_fn()])
        description = lower_stage(fn).describe()
        assert "batch[" in description and "=>" in description

    def test_segment_kernel_flush_cascades(self):
        rng = random.Random(2)
        sample = FilterFunction(
            lambda v: rng.random() < 0.5,
            kernel_spec=KernelSpec.bernoulli(0.5, rng),
        )
        fn = compose([sample, upper_fn()])
        kernel = lower_stage(fn)
        assert isinstance(kernel, SegmentKernel)
        kernel(["a", "b"] * 40)
        kernel.flush()
        assert kernel.segments[0]._state is None

    def test_slab_support_follows_first_segment(self):
        fn_slab_first = compose([grep_fn(), upper_fn()])
        assert lower_stage(fn_slab_first).supports_slab is True
        fn_batch_first = compose([upper_fn(), grep_fn()])
        assert lower_stage(fn_batch_first).supports_slab is False


class TestWireFusionPeephole:
    def q(self, name):
        from repro.workloads import nexmark_queries as nq

        return {
            "q3": nq.q3_local_item_suggestion,
            "q4": nq.q4_category_average,
            "q5": lambda: nq.q5_hot_items(window_seconds=5.0),
        }[name]()

    def decode(self):
        from repro.workloads.nexmark_queries import nexmark_decode

        return nexmark_decode()

    @pytest.mark.parametrize(
        "name, wire",
        [
            ("q3", "NexmarkQ3WireKernel"),
            ("q4", "NexmarkQ4WireKernel"),
            ("q5", "NexmarkQ5WireKernel"),
        ],
    )
    def test_decode_query_pair_fuses(self, name, wire):
        kernel = lower_stage(compose([self.decode(), self.q(name)]))
        assert type(kernel) is getattr(kernels, wire)

    def test_fused_pair_matches_batch_path(self):
        from repro.workloads.nexmark import NexmarkGenerator

        lines = NexmarkGenerator(500, seed=21).encoded()
        fn = compose([self.decode(), self.q("q4")])
        kernel = lower_stage(fn)
        ref = compose([self.decode(), self.q("q4")])
        assert kernel(lines) == ref.process_batch(lines)

    def test_decode_alone_does_not_wire_fuse(self):
        kernel = lower_stage(compose([self.decode(), IdentityFunction()]))
        assert isinstance(kernel, kernels.NexmarkDecodeKernel)

    def test_decode_then_opaque_keeps_decode_kernel_segment(self):
        fn = compose([self.decode(), upper_fn()])
        kernel = lower_stage(fn)
        assert isinstance(kernel, SegmentKernel)
        assert isinstance(kernel.segments[0], kernels.NexmarkDecodeKernel)

    def test_wire_pair_inside_longer_chain(self):
        """Opaque head, fused pair tail: the peephole still fires."""
        head = MapFunction(lambda v: v, name="opaque-head")
        fn = compose([head, self.decode(), self.q("q3")])
        kernel = lower_stage(fn)
        assert isinstance(kernel, SegmentKernel)
        assert isinstance(kernel.segments[0], BatchSegment)
        assert type(kernel.segments[1]) is kernels.NexmarkQ3WireKernel
