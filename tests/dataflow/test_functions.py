"""Tests for repro.dataflow.functions."""

import pytest
from hypothesis import given, strategies as st

from repro.dataflow.functions import (
    ComposedFunction,
    FilterFunction,
    FlatMapFunction,
    IdentityFunction,
    MapFunction,
    compose,
)


class TestBasicFunctions:
    def test_identity_passes_through(self):
        assert list(IdentityFunction().process("x")) == ["x"]

    def test_map_applies(self):
        fn = MapFunction(lambda v: v * 2)
        assert list(fn.process(3)) == [6]

    def test_filter_keeps_matching(self):
        fn = FilterFunction(lambda v: v > 0)
        assert list(fn.process(1)) == [1]
        assert list(fn.process(-1)) == []

    def test_flat_map_multiplies(self):
        fn = FlatMapFunction(lambda v: v.split())
        assert list(fn.process("a b c")) == ["a", "b", "c"]

    def test_flat_map_can_emit_nothing(self):
        fn = FlatMapFunction(lambda v: [])
        assert list(fn.process("x")) == []

    def test_names_and_weights(self):
        fn = MapFunction(lambda v: v, name="MyMap", cost_weight=2.5)
        assert fn.name == "MyMap"
        assert fn.cost_weight == 2.5

    def test_rng_draws_attribute(self):
        fn = FilterFunction(lambda v: True, rng_draws_per_record=1.0)
        assert fn.rng_draws_per_record == 1.0


class TestCompose:
    def test_compose_single_returns_it(self):
        fn = MapFunction(lambda v: v)
        assert compose([fn]) is fn

    def test_compose_applies_in_order(self):
        fused = compose(
            [MapFunction(lambda v: v + 1), MapFunction(lambda v: v * 10)]
        )
        assert list(fused.process(1)) == [20]

    def test_compose_filter_short_circuits(self):
        calls = []
        fused = compose(
            [
                FilterFunction(lambda v: v > 0),
                MapFunction(lambda v: calls.append(v) or v),
            ]
        )
        assert list(fused.process(-1)) == []
        assert calls == []

    def test_compose_flat_map_then_filter(self):
        fused = compose(
            [
                FlatMapFunction(lambda v: v.split()),
                FilterFunction(lambda w: len(w) > 1),
            ]
        )
        assert list(fused.process("a bb ccc")) == ["bb", "ccc"]

    def test_compose_flattens_nested(self):
        inner = compose([MapFunction(lambda v: v + 1), MapFunction(lambda v: v + 1)])
        outer = compose([inner, MapFunction(lambda v: v * 2)])
        assert isinstance(outer, ComposedFunction)
        assert len(outer.parts) == 3
        assert list(outer.process(0)) == [4]

    def test_compose_weight_is_sum(self):
        fused = compose(
            [
                MapFunction(lambda v: v, cost_weight=1.0),
                MapFunction(lambda v: v, cost_weight=2.5),
            ]
        )
        assert fused.cost_weight == 3.5

    def test_compose_rng_draws_sum(self):
        fused = compose(
            [
                FilterFunction(lambda v: True, rng_draws_per_record=1.0),
                FilterFunction(lambda v: True, rng_draws_per_record=0.5),
            ]
        )
        assert fused.rng_draws_per_record == 1.5

    def test_compose_empty_rejected(self):
        with pytest.raises(ValueError):
            compose([])

    def test_compose_lifecycle_propagates(self):
        events = []

        class Probe(IdentityFunction):
            def __init__(self, tag):
                self.tag = tag

            def open(self):
                events.append(f"open-{self.tag}")

            def close(self):
                events.append(f"close-{self.tag}")

        fused = compose([Probe("a"), Probe("b")])
        fused.open()
        fused.close()
        assert events == ["open-a", "open-b", "close-a", "close-b"]

    @given(st.lists(st.integers(), max_size=50))
    def test_composed_equals_sequential_application(self, values):
        """Fusing must never change results — the chaining correctness
        invariant."""
        parts = [
            FlatMapFunction(lambda v: [v, v + 1]),
            FilterFunction(lambda v: v % 2 == 0),
            MapFunction(lambda v: v * 3),
        ]
        fused = compose(parts)
        for value in values:
            expected = []
            stage1 = list(parts[0].process(value))
            stage2 = [v for s in stage1 for v in parts[1].process(s)]
            expected = [v for s in stage2 for v in parts[2].process(s)]
            assert list(fused.process(value)) == expected
