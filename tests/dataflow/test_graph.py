"""Tests for repro.dataflow.graph."""

import pytest

from repro.dataflow.functions import IdentityFunction
from repro.dataflow.graph import (
    GraphError,
    LogicalGraph,
    LogicalOperator,
    OperatorKind,
)


def op(name, kind=OperatorKind.OPERATOR, **kwargs):
    if kind is OperatorKind.OPERATOR and "function" not in kwargs:
        kwargs["function"] = IdentityFunction()
    return LogicalOperator(name=name, kind=kind, **kwargs)


def linear_graph():
    g = LogicalGraph("g")
    g.add(op("src", OperatorKind.SOURCE))
    g.add(op("mid"))
    g.add(op("sink", OperatorKind.SINK))
    g.connect("src", "mid")
    g.connect("mid", "sink")
    return g


class TestConstruction:
    def test_duplicate_names_rejected(self):
        g = LogicalGraph()
        g.add(op("a", OperatorKind.SOURCE))
        with pytest.raises(GraphError):
            g.add(op("a", OperatorKind.SOURCE))

    def test_operator_requires_function(self):
        with pytest.raises(GraphError):
            LogicalOperator(name="x", kind=OperatorKind.OPERATOR)

    def test_parallelism_must_be_positive(self):
        with pytest.raises(GraphError):
            LogicalOperator(name="x", kind=OperatorKind.SOURCE, parallelism=0)

    def test_connect_unknown_node(self):
        g = LogicalGraph()
        g.add(op("a", OperatorKind.SOURCE))
        with pytest.raises(GraphError):
            g.connect("a", "missing")

    def test_self_loop_rejected(self):
        g = LogicalGraph()
        g.add(op("a", OperatorKind.SOURCE))
        with pytest.raises(GraphError):
            g.connect("a", "a")

    def test_contains(self):
        g = linear_graph()
        assert "mid" in g
        assert "nope" not in g

    def test_lookup_unknown_operator(self):
        with pytest.raises(GraphError):
            linear_graph().operator("nope")


class TestNavigation:
    def test_operators_in_insertion_order(self):
        g = linear_graph()
        assert [o.name for o in g.operators()] == ["src", "mid", "sink"]

    def test_sources_and_sinks(self):
        g = linear_graph()
        assert [o.name for o in g.sources()] == ["src"]
        assert [o.name for o in g.sinks()] == ["sink"]

    def test_downstream_upstream(self):
        g = linear_graph()
        assert [o.name for o in g.downstream("src")] == ["mid"]
        assert [o.name for o in g.upstream("sink")] == ["mid"]

    def test_topological_order(self):
        g = linear_graph()
        assert [o.name for o in g.topological()] == ["src", "mid", "sink"]

    def test_len(self):
        assert len(linear_graph()) == 3


class TestValidation:
    def test_valid_linear_graph(self):
        linear_graph().validate()

    def test_empty_graph_invalid(self):
        with pytest.raises(GraphError):
            LogicalGraph().validate()

    def test_cycle_detected(self):
        g = LogicalGraph()
        g.add(op("src", OperatorKind.SOURCE))
        g.add(op("a"))
        g.add(op("b"))
        g.connect("src", "a")
        g.connect("a", "b")
        g.connect("b", "a")
        with pytest.raises(GraphError):
            g.validate()

    def test_no_source_invalid(self):
        g = LogicalGraph()
        g.add(op("a"))
        g.add(op("b", OperatorKind.SINK))
        g.connect("a", "b")
        with pytest.raises(GraphError):
            g.validate()

    def test_unreachable_operator_invalid(self):
        g = linear_graph()
        g.add(op("orphan"))
        with pytest.raises(GraphError):
            g.validate()

    def test_source_with_inputs_invalid(self):
        g = LogicalGraph()
        g.add(op("s1", OperatorKind.SOURCE))
        g.add(op("s2", OperatorKind.SOURCE))
        g.connect("s1", "s2")
        with pytest.raises(GraphError):
            g.validate()

    def test_sink_with_outputs_invalid(self):
        g = LogicalGraph()
        g.add(op("src", OperatorKind.SOURCE))
        g.add(op("sink", OperatorKind.SINK))
        g.add(op("after"))
        g.connect("src", "sink")
        g.connect("sink", "after")
        g.connect("src", "after")
        with pytest.raises(GraphError):
            g.validate()

    def test_branching_graph_is_valid_as_graph(self):
        """Branching graphs validate (the *engines* reject them later)."""
        g = LogicalGraph()
        g.add(op("src", OperatorKind.SOURCE))
        g.add(op("a"))
        g.add(op("b"))
        g.add(op("sink", OperatorKind.SINK))
        g.connect("src", "a")
        g.connect("src", "b")
        g.connect("a", "sink")
        g.connect("b", "sink")
        g.validate()
