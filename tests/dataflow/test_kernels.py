"""Unit tests for the compiled kernel layer (``repro.dataflow.kernels``).

The equivalence suite (``tests/engines/test_kernel_equivalence.py``)
proves tier bit-identity end to end; this file exercises each kernel's
guards, fallbacks and adversarial inputs directly — the cases where a
kernel must *refuse* its fast path to stay exact.
"""

from __future__ import annotations

import random

import pytest

import repro.dataflow.kernels as kernels
from repro.dataflow.functions import (
    FilterFunction,
    IdentityFunction,
    MapFunction,
    compose,
)
from repro.dataflow.kernels import (
    ChainKernel,
    ChunkView,
    ColumnKernel,
    FusedKernel,
    GrepKernel,
    IdentityKernel,
    KernelSpec,
    SampleKernel,
    WorkloadSlab,
    compile_function,
    slab_for,
)

np = pytest.importorskip("numpy")


def ref_grep(needle, values):
    return [v for v in values if needle in v]


def ref_column(index, sep, values):
    return [v.split(sep)[index] for v in values]


# ---------------------------------------------------------------------------
# GrepKernel


class TestGrepKernel:
    def test_bulk_matches_reference(self):
        values = [f"row {i} of the test data" if i % 3 else f"row {i}" for i in range(500)]
        kernel = GrepKernel("test")
        assert kernel(values) == ref_grep("test", values)

    def test_needle_at_line_boundaries(self):
        """Hits at line starts, line ends, and exact blob edges."""
        values = ["abXY", "XYab", "XY", "aXYb", "noope", "xXY"]  # XY everywhere
        kernel = GrepKernel("XY")
        # force the bulk path despite the small chunk
        values = values * 10
        assert kernel(values) == ref_grep("XY", values)

    def test_needle_spanning_lines_never_matches(self):
        """'b\\na' appears in the joined blob but in no single record."""
        values = ["xb", "ay"] * 40
        kernel = GrepKernel("ba")
        assert kernel(values) == []

    def test_multiple_hits_in_one_line_dedup(self):
        values = ["XY and XY and XY", "plain"] * 40
        kernel = GrepKernel("XY")
        assert kernel(values) == ref_grep("XY", values)

    def test_non_ascii_values_fall_back(self):
        values = ["héllo test", "plain test", "nope"] * 20
        kernel = GrepKernel("test")
        assert kernel(values) == ref_grep("test", values)

    def test_non_ascii_needle_falls_back(self):
        values = ["héllo", "hello"] * 40
        kernel = GrepKernel("é")
        assert not kernel._bulk
        assert kernel(values) == ref_grep("é", values)

    def test_single_char_needle_falls_back(self):
        """The u2 scan needs two needle bytes; one-byte needles stay exact
        through the comprehension."""
        values = ["abc", "xyz", "a"] * 40
        kernel = GrepKernel("a")
        assert not kernel._bulk
        assert kernel(values) == ref_grep("a", values)

    def test_needle_with_newline_falls_back(self):
        values = ["one\ntwo", "three"] * 40
        kernel = GrepKernel("e\nt")
        assert not kernel._bulk
        assert kernel(values) == ref_grep("e\nt", values)

    def test_values_with_embedded_newlines_fall_back(self):
        values = ["a\nXYb" if i % 5 == 0 else f"row{i}XY" for i in range(200)]
        kernel = GrepKernel("XY")
        assert kernel(values) == ref_grep("XY", values)

    def test_non_str_values_fall_back_to_reference_semantics(self):
        """Lists support ``in`` as membership: join fails, the fallback
        comprehension applies the exact same (element) semantics."""
        values = [["xx", 2], [2, 3]] * 40
        kernel = GrepKernel("xx")
        assert kernel(values) == [v for v in values if "xx" in v]

    def test_small_chunks_use_comprehension(self):
        values = ["a test", "nope"]
        kernel = GrepKernel("test")
        assert kernel(values) == ["a test"]

    def test_two_byte_needle_no_tail(self):
        """Needle of exactly two bytes skips the tail verify entirely."""
        values = [f"{i:04d}ab" if i % 2 else f"{i:04d}" for i in range(300)]
        kernel = GrepKernel("ab")
        assert kernel(values) == ref_grep("ab", values)

    def test_describe_names_the_path(self):
        assert "u2-scan" in GrepKernel("test").describe()
        assert "comprehension" in GrepKernel("é").describe()


# ---------------------------------------------------------------------------
# ColumnKernel


class TestColumnKernel:
    def test_column_zero_matches_split(self):
        values = [f"user{i}\tquery {i}\t{i}" for i in range(100)]
        kernel = ColumnKernel(0, "\t")
        assert kernel(values) == ref_column(0, "\t", values)

    def test_separator_free_lines_exact(self):
        """split(sep)[0] of a separator-free line is the whole line."""
        values = ["no-tabs-here", "a\tb", "also no tabs"] * 10
        kernel = ColumnKernel(0, "\t")
        assert kernel(values) == ref_column(0, "\t", values)

    def test_nonzero_index_falls_back(self):
        values = [f"a\tb{i}\tc" for i in range(50)]
        kernel = ColumnKernel(1, "\t")
        assert not kernel._fast
        assert kernel(values) == ref_column(1, "\t", values)

    def test_multichar_sep_falls_back(self):
        values = [f"a::b{i}" for i in range(50)]
        kernel = ColumnKernel(0, "::")
        assert kernel(values) == ref_column(0, "::", values)

    def test_non_str_values_fall_back_to_reference_semantics(self):
        kernel = ColumnKernel(0, "\t")
        with pytest.raises(AttributeError):
            kernel([object()])

    def test_missing_column_raises_like_reference(self):
        values = ["only-one-field"]
        kernel = ColumnKernel(2, "\t")
        with pytest.raises(IndexError):
            kernel(values)


class TestColumnSlabProjection:
    def _slab(self, values):
        slab = kernels._build_slab(values)
        assert slab is not None
        return slab

    def test_uniform_width_projects_exactly(self):
        values = [f"{100000 + i}\tquery {i}" for i in range(300)]
        kernel = ColumnKernel(0, "\t")
        column = kernel._project_slab(self._slab(values))
        assert column == ref_column(0, "\t", values)

    def test_nonuniform_width_refused(self):
        values = [f"{'x' * (5 + i % 3)}\trest" for i in range(100)]
        kernel = ColumnKernel(0, "\t")
        assert kernel._project_slab(self._slab(values)) is None

    def test_short_line_cannot_read_into_neighbour(self):
        """A line shorter than the learned width must refuse the gather —
        the byte at ``start + width`` belongs to the *next* line."""
        values = ["abcdef\trest"] * 50 + ["ab"] + ["abcdef\trest"] * 50
        kernel = ColumnKernel(0, "\t")
        assert kernel._project_slab(self._slab(values)) is None

    def test_earlier_separator_refused(self):
        values = ["abcdef\trest"] * 50 + ["ab\tcdef\trest"] + ["abcdef\trest"] * 50
        kernel = ColumnKernel(0, "\t")
        assert kernel._project_slab(self._slab(values)) is None

    def test_no_separator_in_first_line_refused(self):
        values = ["nosep"] + [f"abc\tdef{i}" for i in range(50)]
        kernel = ColumnKernel(0, "\t")
        assert kernel._project_slab(self._slab(values)) is None

    def test_width_zero_column(self):
        values = ["\trest of line"] * 80
        kernel = ColumnKernel(0, "\t")
        assert kernel._project_slab(self._slab(values)) == [""] * 80

    def test_call_slab_serves_windows(self):
        values = [f"{100000 + i}\tq{i}" for i in range(200)]
        slab = self._slab(values)
        kernel = ColumnKernel(0, "\t")
        expected = ref_column(0, "\t", values)
        assert kernel.call_slab(slab, 0, values[0:64]) == expected[0:64]
        assert kernel.call_slab(slab, 64, values[64:128]) == expected[64:128]
        assert kernel.call_slab(slab, 128, values[128:200]) == expected[128:200]
        kernel.flush()
        assert kernel._slab is None and kernel._column is None

    def test_call_slab_nonuniform_falls_back_per_chunk(self):
        values = [f"{'x' * (5 + i % 3)}\trest{i}" for i in range(120)]
        slab = self._slab(values)
        kernel = ColumnKernel(0, "\t")
        out = kernel.call_slab(slab, 0, values[:60]) + kernel.call_slab(
            slab, 60, values[60:]
        )
        assert out == ref_column(0, "\t", values)

    def test_projected_strings_are_real_strs(self):
        values = [f"{100000 + i}\tq" for i in range(100)]
        kernel = ColumnKernel(0, "\t")
        column = kernel._project_slab(self._slab(values))
        assert all(type(v) is str for v in column)


# ---------------------------------------------------------------------------
# SampleKernel


class TestSampleKernel:
    def test_identical_stream_to_python_rng(self):
        values = list(range(1000))
        rng = random.Random(42)
        kernel = SampleKernel(0.3, rng)
        picked = kernel(values)
        kernel.flush()
        ref_rng = random.Random(42)
        assert picked == [v for v in values if ref_rng.random() < 0.3]
        assert rng.getstate() == ref_rng.getstate()

    def test_flush_is_idempotent(self):
        rng = random.Random(1)
        kernel = SampleKernel(0.5, rng)
        kernel(list(range(64)))
        kernel.flush()
        state = rng.getstate()
        kernel.flush()
        assert rng.getstate() == state

    def test_state_resumes_across_chunks(self):
        rng = random.Random(7)
        kernel = SampleKernel(0.5, rng)
        out = kernel(list(range(100))) + kernel(list(range(100, 200)))
        kernel.flush()
        ref_rng = random.Random(7)
        assert out == [v for v in range(200) if ref_rng.random() < 0.5]

    def test_empty_chunk_draws_nothing(self):
        rng = random.Random(3)
        before = rng.getstate()
        kernel = SampleKernel(0.5, rng)
        assert kernel([]) == []
        kernel.flush()
        assert rng.getstate() == before


# ---------------------------------------------------------------------------
# Identity, fusion, chains, compilation


class TestIdentityKernel:
    def test_zero_copy_list(self):
        values = [1, 2, 3]
        assert IdentityKernel()(values) is values

    def test_chunk_view_passes_through(self):
        view = ChunkView([1, 2, 3, 4], 1, 3)
        assert IdentityKernel()(view) is view

    def test_other_sequences_materialize(self):
        assert IdentityKernel()((1, 2)) == [1, 2]


class TestChunkView:
    def test_sequence_surface(self):
        view = ChunkView(list(range(10)), 2, 7)
        assert len(view) == 5
        assert list(view) == [2, 3, 4, 5, 6]
        assert view[0] == 2
        assert view[4] == 6
        assert view[-1] == 6
        assert view[1:3] == [3, 4]
        with pytest.raises(IndexError):
            view[5]

    def test_truthiness(self):
        assert not ChunkView([1], 0, 0)
        assert ChunkView([1], 0, 1)


class TestFusionAndChains:
    def test_composed_all_spec_compiles(self):
        rng = random.Random(5)
        fn = compose(
            [
                FilterFunction(
                    lambda v: rng.random() < 0.5,
                    kernel_spec=KernelSpec.bernoulli(0.5, rng),
                ),
                MapFunction(
                    lambda v: v.split("\t")[0], kernel_spec=KernelSpec.column(0, "\t")
                ),
                IdentityFunction(),
            ]
        )
        kernel = compile_function(fn)
        assert kernel is not None
        values = [f"a{i}\tb" for i in range(200)]
        ref_rng = random.Random(5)
        expected = [
            v.split("\t")[0] for v in values if ref_rng.random() < 0.5
        ]
        out = kernel(values)
        kernel.flush()
        assert out == expected

    def test_composed_with_unspecced_part_does_not_compile(self):
        fn = compose(
            [
                MapFunction(str.upper),  # no spec
                IdentityFunction(),
            ]
        )
        assert compile_function(fn) is None

    def test_unspecced_function_does_not_compile(self):
        assert compile_function(MapFunction(str.upper)) is None

    def test_identity_only_chain_is_identity(self):
        fn = compose([IdentityFunction(), IdentityFunction()])
        kernel = compile_function(fn)
        assert isinstance(kernel, IdentityKernel)

    def test_fused_comprehension_cache_reused(self):
        spec_a = [KernelSpec.item(0), KernelSpec.item(1)]
        spec_b = [KernelSpec.item(0), KernelSpec.item(1)]
        ka = kernels._build_chain(spec_a)
        kb = kernels._build_chain(spec_b)
        assert isinstance(ka, FusedKernel) and isinstance(kb, FusedKernel)
        assert ka._fn is kb._fn  # compiled once, parameterized per instance

    def test_filter_after_map_breaks_fusion_segment(self):
        """A filter must test the raw loop variable, so map→filter chains
        split into sequential kernels rather than fusing wrongly."""
        fn = compose(
            [
                MapFunction(lambda v: v[0], kernel_spec=KernelSpec.item(0)),
                FilterFunction(
                    lambda v: "x" in v, kernel_spec=KernelSpec.contains("xx")
                ),
            ]
        )
        kernel = compile_function(fn)
        values = [("xxab",), ("cd",)] * 40
        assert kernel(values) == [v[0] for v in values if "xx" in v[0]]

    def test_chain_flush_cascades(self):
        rng = random.Random(9)
        specs = [KernelSpec.bernoulli(0.5, rng), KernelSpec.contains("ab")]
        kernel = kernels._build_chain(specs)
        assert isinstance(kernel, ChainKernel)
        kernel(["ab", "cd"] * 40)
        kernel.flush()
        # after flush, the sample op has returned its adopted state
        sample_op = kernel.ops[0]
        assert sample_op._state is None


# ---------------------------------------------------------------------------
# Workload slabs


class TestWorkloadSlab:
    def test_build_and_offsets(self):
        records = ["alpha", "b", "", "gamma"]
        slab = kernels._build_slab(records)
        assert isinstance(slab, WorkloadSlab)
        assert slab.text == "alpha\nb\n\ngamma"
        assert slab.starts.tolist() == [0, 6, 8, 9]
        for i, rec in enumerate(records):
            start = int(slab.starts[i])
            assert slab.text[start : start + len(rec)] == rec

    def test_embedded_newline_refused(self):
        assert kernels._build_slab(["a", "b\nc"]) is None

    def test_non_ascii_refused(self):
        assert kernels._build_slab(["héllo", "x"]) is None

    def test_non_str_refused(self):
        assert kernels._build_slab([1, 2, 3]) is None

    def test_slab_for_threshold_and_type(self, monkeypatch):
        monkeypatch.setattr(kernels, "SLAB_MIN_RECORDS", 4)
        assert slab_for(["a", "b"]) is None  # below threshold
        assert slab_for(("a", "b", "c", "d", "e")) is None  # not a list
        records = ["a", "b", "c", "d", "e"]
        slab = slab_for(records)
        assert slab is not None and slab.records is records

    def test_slab_cached_by_identity(self, monkeypatch):
        monkeypatch.setattr(kernels, "SLAB_MIN_RECORDS", 2)
        records = ["a", "b", "c"]
        assert slab_for(records) is slab_for(records)
        assert slab_for(list(records)) is not slab_for(records)

    def test_failed_build_memoized(self, monkeypatch):
        monkeypatch.setattr(kernels, "SLAB_MIN_RECORDS", 2)
        records = ["a\nb", "c"]
        assert slab_for(records) is None
        builds = []
        original = kernels._build_slab
        monkeypatch.setattr(
            kernels, "_build_slab", lambda r: builds.append(1) or original(r)
        )
        assert slab_for(records) is None
        assert not builds  # the failure was served from the memo

    def test_grown_list_invalidates_entry(self, monkeypatch):
        monkeypatch.setattr(kernels, "SLAB_MIN_RECORDS", 2)
        records = ["a", "b", "c"]
        first = slab_for(records)
        records.append("d")
        second = slab_for(records)
        assert second is not first
        assert second.text == "a\nb\nc\nd"

    def test_cache_eviction_keeps_cap(self, monkeypatch):
        monkeypatch.setattr(kernels, "SLAB_MIN_RECORDS", 2)
        keep = [["a", "b"], ["c", "d"], ["e", "f"], ["g", "h"]]
        for records in keep:
            slab_for(records)
        assert len(kernels._SLAB_CACHE) <= kernels._SLAB_CACHE_MAX


class TestGrepSlabPath:
    def test_call_slab_serves_original_objects(self):
        records = [f"row {i} test" if i % 3 == 0 else f"row {i}" for i in range(100)]
        slab = kernels._build_slab(records)
        kernel = GrepKernel("test")
        out = kernel.call_slab(slab, 0, records[:50]) + kernel.call_slab(
            slab, 50, records[50:]
        )
        kernel.flush()
        expected = ref_grep("test", records)
        assert out == expected
        assert all(any(o is r for r in records) for o in out)

    def test_flush_clears_scan_state(self):
        records = ["a test", "b"] * 40
        slab = kernels._build_slab(records)
        kernel = GrepKernel("test")
        kernel.call_slab(slab, 0, records)
        assert kernel._indices is not None
        kernel.flush()
        assert kernel._slab is None and kernel._indices is None

    def test_no_hits(self):
        records = [f"row {i}" for i in range(80)]
        slab = kernels._build_slab(records)
        kernel = GrepKernel("zzz")
        assert kernel.call_slab(slab, 0, records) == []
        kernel.flush()

    def test_multiple_hits_one_record_emitted_once(self):
        records = ["XY XY XY", "plain"] * 40
        slab = kernels._build_slab(records)
        kernel = GrepKernel("XY")
        out = kernel.call_slab(slab, 0, records)
        kernel.flush()
        assert out == ref_grep("XY", records)


# ---------------------------------------------------------------------------
# Stateful kernels (keyed tier)


def make_wordcount():
    from repro.benchmark.queries import get_query

    return get_query("wordcount").make_function(random.Random(0))


def make_distinct():
    from repro.benchmark.queries import get_query

    return get_query("distinct-count").make_function(random.Random(0))


def make_statistics():
    from repro.benchmark.queries import get_query

    return get_query("statistics").make_function(random.Random(0))


def ref_process(function, values):
    out = []
    for value in values:
        out.extend(function.process(value))
    return out


AOL_LIKE = [
    f"user{i % 7}\tsome query words {i % 5} here\t{i}" for i in range(200)
] + ["no-separator-line", "user9\t\t3"]


class TestWordCountKernel:
    def test_matches_reference_across_chunks(self):
        fn = make_wordcount()
        kernel = compile_function(fn)
        assert isinstance(kernel, kernels.WordCountKernel)
        out = kernel(AOL_LIKE[:101]) + kernel(AOL_LIKE[101:])
        ref = make_wordcount()
        assert out == ref_process(ref, AOL_LIKE)
        assert fn.counts == ref.counts

    def test_slab_path_matches(self):
        records = [f"u{i}\tquery {i % 3} words" for i in range(120)]
        slab = kernels._build_slab(records)
        fn = make_wordcount()
        kernel = kernels.WordCountKernel(fn)
        out = kernel.call_slab(slab, 0, records[:60]) + kernel.call_slab(
            slab, 60, records[60:]
        )
        ref = make_wordcount()
        assert out == ref_process(ref, records)
        assert fn.counts == ref.counts

    def test_slab_count_mismatch_falls_back(self):
        """A separator-free line breaks the regex count; the kernel must
        detect the mismatch and take the exact per-line path."""
        records = ["a\tone two", "no-separator here", "b\tthree"] * 30
        slab = kernels._build_slab(records)
        fn = make_wordcount()
        kernel = kernels.WordCountKernel(fn)
        out = kernel.call_slab(slab, 0, records)
        ref = make_wordcount()
        assert out == ref_process(ref, records)
        assert fn.counts == ref.counts


class TestDistinctCountKernel:
    def test_matches_reference_across_chunks(self):
        fn = make_distinct()
        kernel = compile_function(fn)
        assert isinstance(kernel, kernels.DistinctCountKernel)
        out = kernel(AOL_LIKE[:77]) + kernel(AOL_LIKE[77:])
        ref = make_distinct()
        assert out == ref_process(ref, AOL_LIKE)
        assert fn.seen == ref.seen


class TestStatisticsKernel:
    def test_bulk_matches_reference(self):
        fn = make_statistics()
        kernel = compile_function(fn)
        assert isinstance(kernel, kernels.StatisticsKernel)
        out = kernel(AOL_LIKE[:150]) + kernel(AOL_LIKE[150:])
        ref = make_statistics()
        assert out == ref_process(ref, AOL_LIKE)
        assert fn.snapshot() == ref.snapshot()

    def test_small_chunk_takes_hoisted_loop(self):
        """Below _MIN_BULK the kernel's scalar loop must stay exact."""
        values = AOL_LIKE[: kernels._MIN_BULK - 1]
        fn = make_statistics()
        out = kernels.StatisticsKernel(fn)(values)
        ref = make_statistics()
        assert out == ref_process(ref, values)
        assert fn.snapshot() == ref.snapshot()

    def test_no_numpy_fallback(self, monkeypatch):
        monkeypatch.setattr(kernels, "_np", None)
        fn = make_statistics()
        out = kernels.StatisticsKernel(fn)(AOL_LIKE)
        ref = make_statistics()
        assert out == ref_process(ref, AOL_LIKE)
        assert fn.snapshot() == ref.snapshot()


class TestKeyedReduceKernel:
    def test_matches_reference(self):
        from repro.engines.flink.datastream import KeyedReduceFunction

        def build():
            return KeyedReduceFunction(
                key_selector=lambda v: v[0],
                reducer=lambda acc, new: acc + new,
                value_selector=lambda v: v[1],
            )

        values = [(f"k{i % 5}", i) for i in range(100)]
        fn = build()
        kernel = compile_function(fn)
        assert isinstance(kernel, kernels.KeyedReduceKernel)
        out = kernel(values[:33]) + kernel(values[33:])
        ref = build()
        assert out == ref_process(ref, values)
        assert fn.state == ref.state


class TestUpdateStateKernel:
    def test_matches_reference(self):
        from repro.engines.spark.dstream import UpdateStateByKeyFunction

        def build():
            return UpdateStateByKeyFunction(
                lambda new, old: (old or 0) + new
            )

        values = [(f"k{i % 4}", i) for i in range(80)]
        fn = build()
        kernel = compile_function(fn)
        assert isinstance(kernel, kernels.UpdateStateKernel)
        out = kernel(values[:41]) + kernel(values[41:])
        ref = build()
        assert out == ref_process(ref, values)
        assert fn.state == ref.state


class TestGroupByKeyKernel:
    def test_buffers_and_emits_nothing(self):
        from repro.beam.runners.util import GroupByKeyFunction

        fn = GroupByKeyFunction()
        kernel = compile_function(fn)
        assert isinstance(kernel, kernels.GroupByKeyKernel)
        assert kernel([("a", 1), ("b", 2), ("a", 3)]) == []
        assert fn.groups == {"a": [1, 3], "b": [2]}
        assert list(fn.finish()) == [("a", [1, 3]), ("b", [2])]

    def test_non_pair_raises_beam_error_with_state_intact(self):
        """The BeamError matches the reference, and records before the bad
        one are already grouped — exactly the reference's state at raise."""
        from repro.beam.errors import BeamError
        from repro.beam.runners.util import GroupByKeyFunction

        fn = GroupByKeyFunction()
        kernel = kernels.GroupByKeyKernel(fn)
        with pytest.raises(BeamError) as kernel_err:
            kernel([("a", 1), "not-a-pair", ("b", 2)])
        ref = GroupByKeyFunction()
        with pytest.raises(BeamError) as ref_err:
            for value in [("a", 1), "not-a-pair", ("b", 2)]:
                ref.process(value)
        assert str(kernel_err.value) == str(ref_err.value)
        assert fn.groups == ref.groups == {"a": [1]}


# ---------------------------------------------------------------------------
# Nexmark wire kernels (fused decode -> query)


def nexmark_lines(count=400, seed=13):
    from repro.workloads.nexmark import NexmarkGenerator

    return NexmarkGenerator(count, seed=seed).encoded()


def ref_nexmark(make_query, lines):
    """Reference decode-then-process, stopping where an exception raises."""
    from repro.workloads.nexmark import decode_event

    fn = make_query()
    out = []
    for line in lines:
        out.extend(fn.process(decode_event(line)))
    return out, fn


class TestNexmarkQ3WireKernel:
    def test_matches_reference(self):
        from repro.workloads.nexmark_queries import q3_local_item_suggestion

        lines = nexmark_lines()
        fn = q3_local_item_suggestion()
        kernel = kernels.NexmarkQ3WireKernel(fn)
        out = kernel(lines[:123]) + kernel(lines[123:])
        ref_out, ref_fn = ref_nexmark(q3_local_item_suggestion, lines)
        assert out == ref_out
        assert fn.snapshot() == ref_fn.snapshot()

    def test_bid_lines_skipped_unparsed(self):
        """Q3 consumes no bid fields, so even a malformed bid body is
        skipped (consumed-field conformance is the spec's promise)."""
        from repro.workloads.nexmark_queries import q3_local_item_suggestion

        fn = q3_local_item_suggestion()
        kernel = kernels.NexmarkQ3WireKernel(fn)
        assert kernel(["B\tnot\teven\tclose"]) == []

    def test_unknown_tag_delegates_to_reference(self):
        from repro.workloads.nexmark_queries import q3_local_item_suggestion

        fn = q3_local_item_suggestion()
        kernel = kernels.NexmarkQ3WireKernel(fn)
        with pytest.raises(ValueError, match="unknown event tag"):
            kernel(["Z\t1\t2"])
        with pytest.raises(ValueError, match="unknown event tag"):
            kernel([""])
        with pytest.raises(TypeError):
            kernel([b"P\t1"])  # non-str: the reference path raises


class TestNexmarkQ4WireKernel:
    def test_matches_reference(self):
        from repro.workloads.nexmark_queries import q4_category_average

        lines = nexmark_lines()
        fn = q4_category_average()
        kernel = kernels.NexmarkQ4WireKernel(fn)
        out = kernel(lines[:97]) + kernel(lines[97:])
        ref_out, ref_fn = ref_nexmark(q4_category_average, lines)
        assert out == ref_out
        assert fn.snapshot() == ref_fn.snapshot()

    def test_person_lines_skipped_unparsed(self):
        from repro.workloads.nexmark_queries import q4_category_average

        fn = q4_category_average()
        kernel = kernels.NexmarkQ4WireKernel(fn)
        assert kernel(["P\tgarbage"]) == []

    def test_unknown_tag_delegates_to_reference(self):
        from repro.workloads.nexmark_queries import q4_category_average

        fn = q4_category_average()
        kernel = kernels.NexmarkQ4WireKernel(fn)
        with pytest.raises(ValueError, match="unknown event tag"):
            kernel(["Q\t9"])


class TestNexmarkQ5WireKernel:
    def make(self, window_seconds=10.0):
        from repro.workloads.nexmark_queries import q5_hot_items

        return q5_hot_items(window_seconds=window_seconds)

    def bid(self, auction, ts, bidder=1, price=100):
        return f"B\t{auction}\t{bidder}\t{price}\t{ts!r}"

    def test_matches_reference_including_pane_order(self):
        lines = nexmark_lines(600)
        fn = self.make()
        kernel = kernels.NexmarkQ5WireKernel(fn)
        out = kernel(lines[:211]) + kernel(lines[211:])
        ref_out, ref_fn = ref_nexmark(self.make, lines)
        assert out == ref_out == []
        assert fn.snapshot() == ref_fn.snapshot()
        # finish() order is the pane dict's insertion order — pin it.
        assert list(fn.panes) == list(ref_fn.panes)
        assert list(fn.finish()) == list(ref_fn.finish())

    def test_out_of_order_timestamps_keep_insertion_order(self):
        """Window revisits merge in place; new panes append in first-bid
        order — exactly the reference's first-occurrence order."""
        lines = [
            self.bid(1, 1.0),
            self.bid(2, 11.0),
            self.bid(1, 2.0),   # back to the first window
            self.bid(2, 12.0),
            self.bid(3, 3.0),
            self.bid(1, 1.5),
        ]
        fn = self.make()
        kernel = kernels.NexmarkQ5WireKernel(fn)
        assert kernel(lines) == []
        _, ref_fn = ref_nexmark(self.make, lines)
        assert list(fn.panes.items()) == list(ref_fn.panes.items())

    def test_mid_chunk_error_leaves_reference_state(self):
        """A malformed bid raises the reference's exception with the pane
        dict in the exact state the reference has at that record (the
        locality buffer merges in the finally)."""
        good = [self.bid(1, 1.0), self.bid(2, 2.0), self.bid(1, 11.0)]
        bad = "B\t3\t1\t100\tnot-a-float"
        tail = [self.bid(4, 12.0)]
        fn = self.make()
        kernel = kernels.NexmarkQ5WireKernel(fn)
        with pytest.raises(ValueError) as kernel_err:
            kernel(good + [bad] + tail)
        ref_fn = self.make()
        from repro.workloads.nexmark import decode_event

        with pytest.raises(ValueError) as ref_err:
            for line in good + [bad] + tail:
                ref_fn.process(decode_event(line))
        assert str(kernel_err.value) == str(ref_err.value)
        assert list(fn.panes.items()) == list(ref_fn.panes.items())

    def test_bare_tag_lines_delegate_like_reference(self):
        """'P' with no tab is not a skippable person line: decode_event
        raises IndexError on it, and so must the kernel."""
        for line in ("P", "A"):
            fn = self.make()
            kernel = kernels.NexmarkQ5WireKernel(fn)
            with pytest.raises(IndexError):
                kernel([line])

    def test_unknown_tag_merges_buffer_before_delegating(self):
        """The reference path reads the pane dict, so buffered counts must
        be merged before the unknown line is processed."""
        lines = [self.bid(1, 1.0), self.bid(1, 2.0), "Z\toops"]
        fn = self.make()
        kernel = kernels.NexmarkQ5WireKernel(fn)
        with pytest.raises(ValueError, match="unknown event tag"):
            kernel(lines)
        assert fn.panes == {(1, 0.0, 10.0): 2}

    def test_inf_timestamp_raises_like_reference(self):
        fn = self.make()
        kernel = kernels.NexmarkQ5WireKernel(fn)
        with pytest.raises(ValueError, match="window end must exceed"):
            kernel([self.bid(1, float("inf"))])


# ---------------------------------------------------------------------------
# Windowed aggregation kernel


class TestWindowedAggregateKernel:
    def make(self, **kwargs):
        from repro.beam.window import FixedWindows
        from repro.dataflow.windowing import WindowedAggregateFunction

        defaults = dict(
            window_fn=FixedWindows(10.0),
            key_fn=lambda v: v[0],
            timestamp_fn=lambda v: v[1],
        )
        defaults.update(kwargs)
        return WindowedAggregateFunction(**defaults)

    def test_fixed_windows_match_reference(self):
        values = [(f"k{i % 3}", float(i % 37)) for i in range(150)]
        fn = self.make()
        kernel = compile_function(fn)
        assert isinstance(kernel, kernels.WindowedAggregateKernel)
        assert kernel(values[:70]) + kernel(values[70:]) == []
        ref = self.make()
        ref_process(ref, values)
        assert list(fn.panes.items()) == list(ref.panes.items())
        assert list(fn.finish()) == list(ref.finish())

    def test_sliding_windows_call_assign_per_element(self):
        from repro.beam.window import SlidingWindows

        values = [(f"k{i % 2}", float(i)) for i in range(60)]
        fn = self.make(window_fn=SlidingWindows(10.0, 5.0))
        kernel = compile_function(fn)
        assert isinstance(kernel, kernels.WindowedAggregateKernel)
        kernel(values)
        ref = self.make(window_fn=SlidingWindows(10.0, 5.0))
        ref_process(ref, values)
        assert list(fn.panes.items()) == list(ref.panes.items())

    def test_reducer_and_filter_match_reference(self):
        values = [("k", float(i), i) for i in range(50)]
        make = lambda: self.make(
            key_fn=lambda v: v[0],
            timestamp_fn=lambda v: v[1],
            reducer=lambda acc, v: acc + v[2],
            filter_fn=lambda v: v[2] % 3 != 0,
        )
        fn = make()
        compile_function(fn)(values)
        ref = make()
        ref_process(ref, values)
        assert list(fn.panes.items()) == list(ref.panes.items())

    def test_inf_timestamp_validates_identically(self):
        fn = self.make()
        kernel = kernels.WindowedAggregateKernel(fn)
        with pytest.raises(ValueError, match="window end must exceed"):
            kernel([("k", float("inf"))])

    def test_after_count_trigger_declares_no_spec(self):
        """AfterCount fires mid-stream; the kernel tier must refuse it and
        leave the function on the reference/batch tiers."""
        from repro.beam.window import AfterCount

        fn = self.make(trigger=AfterCount(5))
        assert getattr(fn, "kernel_spec", None) is None
        assert compile_function(fn) is None


# ---------------------------------------------------------------------------
# Fuse-cache bound


class TestFuseCacheEviction:
    def test_cache_stays_bounded_and_evicted_shapes_recompile(self, monkeypatch):
        monkeypatch.setattr(kernels, "_FUSE_CACHE_MAX", 4)
        kernels._FUSE_CACHE.clear()
        built = []
        for index in range(7):
            kernel = kernels._fuse([("map", "{v}[%d]" % index, ())])
            built.append(kernel)
            assert kernel([("a", "b", "c", "d", "e", "f", "g")]) == [
                ("a", "b", "c", "d", "e", "f", "g")[index]
            ]
        assert len(kernels._FUSE_CACHE) <= 4
        # An evicted shape rebuilds transparently and still computes.
        again = kernels._fuse([("map", "{v}[0]", ())])
        assert again([("x", "y")]) == ["x"]
