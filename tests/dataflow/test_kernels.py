"""Unit tests for the compiled kernel layer (``repro.dataflow.kernels``).

The equivalence suite (``tests/engines/test_kernel_equivalence.py``)
proves tier bit-identity end to end; this file exercises each kernel's
guards, fallbacks and adversarial inputs directly — the cases where a
kernel must *refuse* its fast path to stay exact.
"""

from __future__ import annotations

import random

import pytest

import repro.dataflow.kernels as kernels
from repro.dataflow.functions import (
    FilterFunction,
    IdentityFunction,
    MapFunction,
    compose,
)
from repro.dataflow.kernels import (
    ChainKernel,
    ChunkView,
    ColumnKernel,
    FusedKernel,
    GrepKernel,
    IdentityKernel,
    KernelSpec,
    SampleKernel,
    WorkloadSlab,
    compile_function,
    slab_for,
)

np = pytest.importorskip("numpy")


def ref_grep(needle, values):
    return [v for v in values if needle in v]


def ref_column(index, sep, values):
    return [v.split(sep)[index] for v in values]


# ---------------------------------------------------------------------------
# GrepKernel


class TestGrepKernel:
    def test_bulk_matches_reference(self):
        values = [f"row {i} of the test data" if i % 3 else f"row {i}" for i in range(500)]
        kernel = GrepKernel("test")
        assert kernel(values) == ref_grep("test", values)

    def test_needle_at_line_boundaries(self):
        """Hits at line starts, line ends, and exact blob edges."""
        values = ["abXY", "XYab", "XY", "aXYb", "noope", "xXY"]  # XY everywhere
        kernel = GrepKernel("XY")
        # force the bulk path despite the small chunk
        values = values * 10
        assert kernel(values) == ref_grep("XY", values)

    def test_needle_spanning_lines_never_matches(self):
        """'b\\na' appears in the joined blob but in no single record."""
        values = ["xb", "ay"] * 40
        kernel = GrepKernel("ba")
        assert kernel(values) == []

    def test_multiple_hits_in_one_line_dedup(self):
        values = ["XY and XY and XY", "plain"] * 40
        kernel = GrepKernel("XY")
        assert kernel(values) == ref_grep("XY", values)

    def test_non_ascii_values_fall_back(self):
        values = ["héllo test", "plain test", "nope"] * 20
        kernel = GrepKernel("test")
        assert kernel(values) == ref_grep("test", values)

    def test_non_ascii_needle_falls_back(self):
        values = ["héllo", "hello"] * 40
        kernel = GrepKernel("é")
        assert not kernel._bulk
        assert kernel(values) == ref_grep("é", values)

    def test_single_char_needle_falls_back(self):
        """The u2 scan needs two needle bytes; one-byte needles stay exact
        through the comprehension."""
        values = ["abc", "xyz", "a"] * 40
        kernel = GrepKernel("a")
        assert not kernel._bulk
        assert kernel(values) == ref_grep("a", values)

    def test_needle_with_newline_falls_back(self):
        values = ["one\ntwo", "three"] * 40
        kernel = GrepKernel("e\nt")
        assert not kernel._bulk
        assert kernel(values) == ref_grep("e\nt", values)

    def test_values_with_embedded_newlines_fall_back(self):
        values = ["a\nXYb" if i % 5 == 0 else f"row{i}XY" for i in range(200)]
        kernel = GrepKernel("XY")
        assert kernel(values) == ref_grep("XY", values)

    def test_non_str_values_fall_back_to_reference_semantics(self):
        """Lists support ``in`` as membership: join fails, the fallback
        comprehension applies the exact same (element) semantics."""
        values = [["xx", 2], [2, 3]] * 40
        kernel = GrepKernel("xx")
        assert kernel(values) == [v for v in values if "xx" in v]

    def test_small_chunks_use_comprehension(self):
        values = ["a test", "nope"]
        kernel = GrepKernel("test")
        assert kernel(values) == ["a test"]

    def test_two_byte_needle_no_tail(self):
        """Needle of exactly two bytes skips the tail verify entirely."""
        values = [f"{i:04d}ab" if i % 2 else f"{i:04d}" for i in range(300)]
        kernel = GrepKernel("ab")
        assert kernel(values) == ref_grep("ab", values)

    def test_describe_names_the_path(self):
        assert "u2-scan" in GrepKernel("test").describe()
        assert "comprehension" in GrepKernel("é").describe()


# ---------------------------------------------------------------------------
# ColumnKernel


class TestColumnKernel:
    def test_column_zero_matches_split(self):
        values = [f"user{i}\tquery {i}\t{i}" for i in range(100)]
        kernel = ColumnKernel(0, "\t")
        assert kernel(values) == ref_column(0, "\t", values)

    def test_separator_free_lines_exact(self):
        """split(sep)[0] of a separator-free line is the whole line."""
        values = ["no-tabs-here", "a\tb", "also no tabs"] * 10
        kernel = ColumnKernel(0, "\t")
        assert kernel(values) == ref_column(0, "\t", values)

    def test_nonzero_index_falls_back(self):
        values = [f"a\tb{i}\tc" for i in range(50)]
        kernel = ColumnKernel(1, "\t")
        assert not kernel._fast
        assert kernel(values) == ref_column(1, "\t", values)

    def test_multichar_sep_falls_back(self):
        values = [f"a::b{i}" for i in range(50)]
        kernel = ColumnKernel(0, "::")
        assert kernel(values) == ref_column(0, "::", values)

    def test_non_str_values_fall_back_to_reference_semantics(self):
        kernel = ColumnKernel(0, "\t")
        with pytest.raises(AttributeError):
            kernel([object()])

    def test_missing_column_raises_like_reference(self):
        values = ["only-one-field"]
        kernel = ColumnKernel(2, "\t")
        with pytest.raises(IndexError):
            kernel(values)


class TestColumnSlabProjection:
    def _slab(self, values):
        slab = kernels._build_slab(values)
        assert slab is not None
        return slab

    def test_uniform_width_projects_exactly(self):
        values = [f"{100000 + i}\tquery {i}" for i in range(300)]
        kernel = ColumnKernel(0, "\t")
        column = kernel._project_slab(self._slab(values))
        assert column == ref_column(0, "\t", values)

    def test_nonuniform_width_refused(self):
        values = [f"{'x' * (5 + i % 3)}\trest" for i in range(100)]
        kernel = ColumnKernel(0, "\t")
        assert kernel._project_slab(self._slab(values)) is None

    def test_short_line_cannot_read_into_neighbour(self):
        """A line shorter than the learned width must refuse the gather —
        the byte at ``start + width`` belongs to the *next* line."""
        values = ["abcdef\trest"] * 50 + ["ab"] + ["abcdef\trest"] * 50
        kernel = ColumnKernel(0, "\t")
        assert kernel._project_slab(self._slab(values)) is None

    def test_earlier_separator_refused(self):
        values = ["abcdef\trest"] * 50 + ["ab\tcdef\trest"] + ["abcdef\trest"] * 50
        kernel = ColumnKernel(0, "\t")
        assert kernel._project_slab(self._slab(values)) is None

    def test_no_separator_in_first_line_refused(self):
        values = ["nosep"] + [f"abc\tdef{i}" for i in range(50)]
        kernel = ColumnKernel(0, "\t")
        assert kernel._project_slab(self._slab(values)) is None

    def test_width_zero_column(self):
        values = ["\trest of line"] * 80
        kernel = ColumnKernel(0, "\t")
        assert kernel._project_slab(self._slab(values)) == [""] * 80

    def test_call_slab_serves_windows(self):
        values = [f"{100000 + i}\tq{i}" for i in range(200)]
        slab = self._slab(values)
        kernel = ColumnKernel(0, "\t")
        expected = ref_column(0, "\t", values)
        assert kernel.call_slab(slab, 0, values[0:64]) == expected[0:64]
        assert kernel.call_slab(slab, 64, values[64:128]) == expected[64:128]
        assert kernel.call_slab(slab, 128, values[128:200]) == expected[128:200]
        kernel.flush()
        assert kernel._slab is None and kernel._column is None

    def test_call_slab_nonuniform_falls_back_per_chunk(self):
        values = [f"{'x' * (5 + i % 3)}\trest{i}" for i in range(120)]
        slab = self._slab(values)
        kernel = ColumnKernel(0, "\t")
        out = kernel.call_slab(slab, 0, values[:60]) + kernel.call_slab(
            slab, 60, values[60:]
        )
        assert out == ref_column(0, "\t", values)

    def test_projected_strings_are_real_strs(self):
        values = [f"{100000 + i}\tq" for i in range(100)]
        kernel = ColumnKernel(0, "\t")
        column = kernel._project_slab(self._slab(values))
        assert all(type(v) is str for v in column)


# ---------------------------------------------------------------------------
# SampleKernel


class TestSampleKernel:
    def test_identical_stream_to_python_rng(self):
        values = list(range(1000))
        rng = random.Random(42)
        kernel = SampleKernel(0.3, rng)
        picked = kernel(values)
        kernel.flush()
        ref_rng = random.Random(42)
        assert picked == [v for v in values if ref_rng.random() < 0.3]
        assert rng.getstate() == ref_rng.getstate()

    def test_flush_is_idempotent(self):
        rng = random.Random(1)
        kernel = SampleKernel(0.5, rng)
        kernel(list(range(64)))
        kernel.flush()
        state = rng.getstate()
        kernel.flush()
        assert rng.getstate() == state

    def test_state_resumes_across_chunks(self):
        rng = random.Random(7)
        kernel = SampleKernel(0.5, rng)
        out = kernel(list(range(100))) + kernel(list(range(100, 200)))
        kernel.flush()
        ref_rng = random.Random(7)
        assert out == [v for v in range(200) if ref_rng.random() < 0.5]

    def test_empty_chunk_draws_nothing(self):
        rng = random.Random(3)
        before = rng.getstate()
        kernel = SampleKernel(0.5, rng)
        assert kernel([]) == []
        kernel.flush()
        assert rng.getstate() == before


# ---------------------------------------------------------------------------
# Identity, fusion, chains, compilation


class TestIdentityKernel:
    def test_zero_copy_list(self):
        values = [1, 2, 3]
        assert IdentityKernel()(values) is values

    def test_chunk_view_passes_through(self):
        view = ChunkView([1, 2, 3, 4], 1, 3)
        assert IdentityKernel()(view) is view

    def test_other_sequences_materialize(self):
        assert IdentityKernel()((1, 2)) == [1, 2]


class TestChunkView:
    def test_sequence_surface(self):
        view = ChunkView(list(range(10)), 2, 7)
        assert len(view) == 5
        assert list(view) == [2, 3, 4, 5, 6]
        assert view[0] == 2
        assert view[4] == 6
        assert view[-1] == 6
        assert view[1:3] == [3, 4]
        with pytest.raises(IndexError):
            view[5]

    def test_truthiness(self):
        assert not ChunkView([1], 0, 0)
        assert ChunkView([1], 0, 1)


class TestFusionAndChains:
    def test_composed_all_spec_compiles(self):
        rng = random.Random(5)
        fn = compose(
            [
                FilterFunction(
                    lambda v: rng.random() < 0.5,
                    kernel_spec=KernelSpec.bernoulli(0.5, rng),
                ),
                MapFunction(
                    lambda v: v.split("\t")[0], kernel_spec=KernelSpec.column(0, "\t")
                ),
                IdentityFunction(),
            ]
        )
        kernel = compile_function(fn)
        assert kernel is not None
        values = [f"a{i}\tb" for i in range(200)]
        ref_rng = random.Random(5)
        expected = [
            v.split("\t")[0] for v in values if ref_rng.random() < 0.5
        ]
        out = kernel(values)
        kernel.flush()
        assert out == expected

    def test_composed_with_unspecced_part_does_not_compile(self):
        fn = compose(
            [
                MapFunction(str.upper),  # no spec
                IdentityFunction(),
            ]
        )
        assert compile_function(fn) is None

    def test_unspecced_function_does_not_compile(self):
        assert compile_function(MapFunction(str.upper)) is None

    def test_identity_only_chain_is_identity(self):
        fn = compose([IdentityFunction(), IdentityFunction()])
        kernel = compile_function(fn)
        assert isinstance(kernel, IdentityKernel)

    def test_fused_comprehension_cache_reused(self):
        spec_a = [KernelSpec.item(0), KernelSpec.item(1)]
        spec_b = [KernelSpec.item(0), KernelSpec.item(1)]
        ka = kernels._build_chain(spec_a)
        kb = kernels._build_chain(spec_b)
        assert isinstance(ka, FusedKernel) and isinstance(kb, FusedKernel)
        assert ka._fn is kb._fn  # compiled once, parameterized per instance

    def test_filter_after_map_breaks_fusion_segment(self):
        """A filter must test the raw loop variable, so map→filter chains
        split into sequential kernels rather than fusing wrongly."""
        fn = compose(
            [
                MapFunction(lambda v: v[0], kernel_spec=KernelSpec.item(0)),
                FilterFunction(
                    lambda v: "x" in v, kernel_spec=KernelSpec.contains("xx")
                ),
            ]
        )
        kernel = compile_function(fn)
        values = [("xxab",), ("cd",)] * 40
        assert kernel(values) == [v[0] for v in values if "xx" in v[0]]

    def test_chain_flush_cascades(self):
        rng = random.Random(9)
        specs = [KernelSpec.bernoulli(0.5, rng), KernelSpec.contains("ab")]
        kernel = kernels._build_chain(specs)
        assert isinstance(kernel, ChainKernel)
        kernel(["ab", "cd"] * 40)
        kernel.flush()
        # after flush, the sample op has returned its adopted state
        sample_op = kernel.ops[0]
        assert sample_op._state is None


# ---------------------------------------------------------------------------
# Workload slabs


class TestWorkloadSlab:
    def test_build_and_offsets(self):
        records = ["alpha", "b", "", "gamma"]
        slab = kernels._build_slab(records)
        assert isinstance(slab, WorkloadSlab)
        assert slab.text == "alpha\nb\n\ngamma"
        assert slab.starts.tolist() == [0, 6, 8, 9]
        for i, rec in enumerate(records):
            start = int(slab.starts[i])
            assert slab.text[start : start + len(rec)] == rec

    def test_embedded_newline_refused(self):
        assert kernels._build_slab(["a", "b\nc"]) is None

    def test_non_ascii_refused(self):
        assert kernels._build_slab(["héllo", "x"]) is None

    def test_non_str_refused(self):
        assert kernels._build_slab([1, 2, 3]) is None

    def test_slab_for_threshold_and_type(self, monkeypatch):
        monkeypatch.setattr(kernels, "SLAB_MIN_RECORDS", 4)
        assert slab_for(["a", "b"]) is None  # below threshold
        assert slab_for(("a", "b", "c", "d", "e")) is None  # not a list
        records = ["a", "b", "c", "d", "e"]
        slab = slab_for(records)
        assert slab is not None and slab.records is records

    def test_slab_cached_by_identity(self, monkeypatch):
        monkeypatch.setattr(kernels, "SLAB_MIN_RECORDS", 2)
        records = ["a", "b", "c"]
        assert slab_for(records) is slab_for(records)
        assert slab_for(list(records)) is not slab_for(records)

    def test_failed_build_memoized(self, monkeypatch):
        monkeypatch.setattr(kernels, "SLAB_MIN_RECORDS", 2)
        records = ["a\nb", "c"]
        assert slab_for(records) is None
        builds = []
        original = kernels._build_slab
        monkeypatch.setattr(
            kernels, "_build_slab", lambda r: builds.append(1) or original(r)
        )
        assert slab_for(records) is None
        assert not builds  # the failure was served from the memo

    def test_grown_list_invalidates_entry(self, monkeypatch):
        monkeypatch.setattr(kernels, "SLAB_MIN_RECORDS", 2)
        records = ["a", "b", "c"]
        first = slab_for(records)
        records.append("d")
        second = slab_for(records)
        assert second is not first
        assert second.text == "a\nb\nc\nd"

    def test_cache_eviction_keeps_cap(self, monkeypatch):
        monkeypatch.setattr(kernels, "SLAB_MIN_RECORDS", 2)
        keep = [["a", "b"], ["c", "d"], ["e", "f"], ["g", "h"]]
        for records in keep:
            slab_for(records)
        assert len(kernels._SLAB_CACHE) <= kernels._SLAB_CACHE_MAX


class TestGrepSlabPath:
    def test_call_slab_serves_original_objects(self):
        records = [f"row {i} test" if i % 3 == 0 else f"row {i}" for i in range(100)]
        slab = kernels._build_slab(records)
        kernel = GrepKernel("test")
        out = kernel.call_slab(slab, 0, records[:50]) + kernel.call_slab(
            slab, 50, records[50:]
        )
        kernel.flush()
        expected = ref_grep("test", records)
        assert out == expected
        assert all(any(o is r for r in records) for o in out)

    def test_flush_clears_scan_state(self):
        records = ["a test", "b"] * 40
        slab = kernels._build_slab(records)
        kernel = GrepKernel("test")
        kernel.call_slab(slab, 0, records)
        assert kernel._indices is not None
        kernel.flush()
        assert kernel._slab is None and kernel._indices is None

    def test_no_hits(self):
        records = [f"row {i}" for i in range(80)]
        slab = kernels._build_slab(records)
        kernel = GrepKernel("zzz")
        assert kernel.call_slab(slab, 0, records) == []
        kernel.flush()

    def test_multiple_hits_one_record_emitted_once(self):
        records = ["XY XY XY", "plain"] * 40
        slab = kernels._build_slab(records)
        kernel = GrepKernel("XY")
        out = kernel.call_slab(slab, 0, records)
        kernel.flush()
        assert out == ref_grep("XY", records)
