"""Tests for repro.dataflow.metrics."""

import pytest

from repro.dataflow.metrics import JobMetrics, OperatorMetrics


class TestOperatorMetrics:
    def test_record_accumulates(self):
        m = OperatorMetrics("op")
        m.record(10, 5, 0.5)
        m.record(10, 5, 0.5)
        assert m.records_in == 20
        assert m.records_out == 10
        assert m.busy_seconds == pytest.approx(1.0)

    def test_selectivity(self):
        m = OperatorMetrics("op")
        m.record(100, 40, 0.0)
        assert m.selectivity == pytest.approx(0.4)

    def test_selectivity_zero_input(self):
        assert OperatorMetrics("op").selectivity == 0.0


class TestJobMetrics:
    def test_operator_creates_bucket(self):
        jm = JobMetrics("job")
        bucket = jm.operator("a")
        assert jm.operator("a") is bucket

    def test_duration(self):
        jm = JobMetrics("job")
        jm.started_at = 1.0
        jm.finished_at = 4.5
        assert jm.duration == pytest.approx(3.5)

    def test_duration_never_negative(self):
        jm = JobMetrics("job")
        jm.started_at = 5.0
        jm.finished_at = 1.0
        assert jm.duration == 0.0

    def test_time_share_sums_to_one(self):
        jm = JobMetrics("job")
        jm.operator("a").record(1, 1, 3.0)
        jm.operator("b").record(1, 1, 1.0)
        shares = jm.time_share()
        assert shares["a"] == pytest.approx(0.75)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_time_share_empty(self):
        jm = JobMetrics("job")
        jm.operator("a")
        assert jm.time_share() == {"a": 0.0}

    def test_total_busy(self):
        jm = JobMetrics("job")
        jm.operator("a").record(1, 1, 2.0)
        jm.operator("b").record(1, 1, 3.0)
        assert jm.total_busy_seconds() == pytest.approx(5.0)
