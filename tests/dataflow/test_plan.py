"""Tests for repro.dataflow.plan."""

import pytest

from repro.dataflow.plan import ExecutionPlan, PlanNode, ShipStrategy


def three_node_plan():
    plan = ExecutionPlan("grep")
    src = plan.add_node("Data Source", "Source: Custom Source", 1)
    mid = plan.add_node("Operator", "Filter", 1)
    sink = plan.add_node("Data Sink", "Sink: Unnamed", 1)
    plan.add_edge(src, mid)
    plan.add_edge(mid, sink)
    return plan, src, mid, sink


class TestPlanStructure:
    def test_node_ids_sequential(self):
        plan, src, mid, sink = three_node_plan()
        assert (src.node_id, mid.node_id, sink.node_id) == (0, 1, 2)

    def test_successors_predecessors(self):
        plan, src, mid, sink = three_node_plan()
        assert plan.successors(src) == [mid]
        assert plan.predecessors(sink) == [mid]

    def test_sources(self):
        plan, src, mid, sink = three_node_plan()
        assert plan.sources() == [src]

    def test_len(self):
        plan, *_ = three_node_plan()
        assert len(plan) == 3

    def test_edge_to_foreign_node_rejected(self):
        plan, src, *_ = three_node_plan()
        foreign = PlanNode(99, "Operator", "X", 1)
        with pytest.raises(ValueError):
            plan.add_edge(src, foreign)

    def test_edge_strategies(self):
        plan = ExecutionPlan("p")
        a = plan.add_node("Data Source", "s", 1)
        b = plan.add_node("Operator", "o", 2)
        edge = plan.add_edge(a, b, ShipStrategy.HASH)
        assert edge.strategy is ShipStrategy.HASH


class TestRendering:
    def test_render_native_grep_shape(self):
        """The render of the native plan matches Figure 12's three boxes."""
        plan, *_ = three_node_plan()
        text = plan.render()
        assert "Source: Custom Source" in text
        assert "Filter" in text
        assert "Sink: Unnamed" in text
        assert text.count("Parallelism: 1") == 3

    def test_render_shows_parallelism(self):
        plan = ExecutionPlan("p")
        plan.add_node("Data Source", "s", 2)
        assert "Parallelism: 2" in plan.render()

    def test_render_preserves_topology_order(self):
        plan, *_ = three_node_plan()
        text = plan.render()
        assert text.index("Custom Source") < text.index("Filter") < text.index("Unnamed")

    def test_render_multiple_sources(self):
        plan = ExecutionPlan("p")
        plan.add_node("Data Source", "s1", 1)
        plan.add_node("Data Source", "s2", 1)
        text = plan.render()
        assert "s1" in text and "s2" in text
