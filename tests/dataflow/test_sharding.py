"""Unit tests for the shard plane: spans, knobs, and merge invariants.

The heavyweight proof that sharded execution is observationally identical
to serial lives in ``tests/engines/test_query_parallel.py`` (full matrix,
chaos, recovery).  This file pins the *unit* behaviours those suites rest
on: span arithmetic, knob parsing, thread-pool equivalence, pinned
key-insertion order after a keyed merge, and the wire kernels' serial
fallback on malformed input.
"""

from __future__ import annotations

import random

import pytest

from repro.benchmark.queries import get_query
from repro.dataflow import kernels, sharding
from repro.dataflow.compiler import lower_stage
from repro.dataflow.functions import compose
from repro.workloads.nexmark import NexmarkGenerator
from repro.workloads.nexmark_queries import (
    nexmark_decode,
    q3_local_item_suggestion,
    q4_category_average,
    q5_hot_items,
)


class TestSpansAndKnobs:
    def test_spans_cover_and_balance(self):
        for total in (0, 1, 7, 512, 1001):
            for parallelism in (1, 2, 3, 8):
                spans = sharding.shard_spans(total, parallelism)
                assert spans[0][0] == 0 and spans[-1][1] == total
                # Contiguous, non-overlapping, balanced within one record.
                sizes = []
                for (a, b), (c, _d) in zip(spans, spans[1:]):
                    assert b == c
                for a, b in spans:
                    assert b >= a
                    sizes.append(b - a)
                assert max(sizes) - min(sizes) <= 1

    def test_query_parallelism_parsing(self, monkeypatch):
        monkeypatch.delenv(sharding.QUERY_PARALLELISM_ENV, raising=False)
        assert sharding.query_parallelism() == 1
        monkeypatch.setenv(sharding.QUERY_PARALLELISM_ENV, "0")
        assert sharding.query_parallelism() == 1
        monkeypatch.setenv(sharding.QUERY_PARALLELISM_ENV, "4")
        assert sharding.query_parallelism() == 4
        monkeypatch.setenv(sharding.QUERY_PARALLELISM_ENV, "-2")
        with pytest.raises(ValueError):
            sharding.query_parallelism()

    def test_effective_parallelism_clamps_to_affinity(self, monkeypatch):
        monkeypatch.setattr(sharding, "affinity_count", lambda: 3)
        assert sharding.effective_parallelism(1) == 1
        assert sharding.effective_parallelism(3) == 3
        assert sharding.effective_parallelism(8) == 3
        monkeypatch.setattr(sharding, "affinity_count", lambda: 1)
        assert sharding.effective_parallelism(8) == 1


def _lines(count: int, seed: int = 7) -> list[str]:
    rng = random.Random(seed)
    words = ["alpha", "beta", "gamma", "delta", "web", "search"]
    return [
        "\t".join(
            (
                str(rng.randrange(100)),
                " ".join(rng.choice(words) for _ in range(3)),
                str(rng.random()),
            )
        )
        for _ in range(count)
    ]


def _serial_and_sharded(query: str, parallelism: int, chunks: list) -> tuple:
    """Run one stateful query serially and sharded over the same chunks.

    Returns ((serial outputs, serial state), (sharded outputs, sharded
    state)) where state includes the *insertion order* of the owner dict —
    the bit the merge must pin for finish()/snapshot equivalence.
    """
    results = []
    for p in (1, parallelism):
        function = get_query(query).make_function(random.Random(3))
        kernel = lower_stage(function, parallelism=p)
        outputs = [kernel(chunk) for chunk in chunks]
        kernel.flush()
        state = {
            name: (dict(value), list(value))
            for name, value in vars(function).items()
            if isinstance(value, dict)
        }
        sets = {
            name: sorted(value)
            for name, value in vars(function).items()
            if isinstance(value, set)
        }
        results.append((outputs, state, sets))
    return results[0], results[1]


class TestKeyedSharding:
    @pytest.mark.parametrize("query", ("wordcount", "distinct-count"))
    @pytest.mark.parametrize("parallelism", (2, 3, 4))
    def test_bit_identical_to_serial(self, query, parallelism):
        lines = _lines(600)
        chunks = [lines[:250], lines[250:251], [], lines[251:]]
        serial, sharded = _serial_and_sharded(query, parallelism, chunks)
        assert sharded == serial

    def test_merge_pins_key_insertion_order(self):
        lines = _lines(400)
        serial, sharded = _serial_and_sharded("wordcount", 4, [lines])
        # Not just equal dicts: the same first-occurrence insertion order.
        for name in serial[1]:
            assert sharded[1][name][1] == serial[1][name][1]

    def test_sharded_kernel_engages(self):
        function = get_query("wordcount").make_function(random.Random(3))
        kernel = lower_stage(function, parallelism=2)
        assert isinstance(kernel, sharding.ShardedStatefulKernel)
        serial = lower_stage(
            get_query("wordcount").make_function(random.Random(3)), parallelism=1
        )
        assert not isinstance(serial, sharding.ShardedStatefulKernel)


class TestPureSharding:
    def test_thread_pool_matches_sequential(self, monkeypatch):
        spec_chain = [kernels.KernelSpec.contains("web")]
        lines = _lines(2_000)
        baseline = sharding.shard_pure_chain(spec_chain, 3)(lines)
        monkeypatch.setattr(sharding, "FORCE_THREADS", True)
        threaded = sharding.shard_pure_chain(spec_chain, 3)(lines)
        assert threaded == baseline
        assert baseline == [line for line in lines if "web" in line]

    def test_small_chunks_bypass_split(self):
        chain = sharding.shard_pure_chain([kernels.KernelSpec.contains("web")], 4)
        assert isinstance(chain, sharding.ShardedPureKernel)
        few = _lines(10)
        assert chain(few) == [line for line in few if "web" in line]


def _wire_outputs(query_fn, events: list, parallelism: int) -> tuple:
    composed = compose([nexmark_decode(), query_fn()])
    composed.open()
    kernel = lower_stage(composed, parallelism=parallelism)
    outputs = []
    error = None
    try:
        outputs = [kernel(events[:1500]), kernel(events[1500:])]
    except Exception as exc:  # malformed input: compare error + state
        error = (type(exc).__name__, str(exc))
    kernel.flush()
    snapshot = composed.snapshot() if hasattr(composed, "snapshot") else None
    finish = list(composed.finish())
    composed.close()
    return outputs, error, snapshot, finish


class TestWireSharding:
    @pytest.fixture(scope="class")
    def events(self):
        return NexmarkGenerator(3_000, seed=11).encoded()

    @pytest.mark.parametrize(
        "query_fn",
        (
            q3_local_item_suggestion,
            q4_category_average,
            lambda: q5_hot_items(window_seconds=3.0),
        ),
        ids=("q3", "q4", "q5"),
    )
    @pytest.mark.parametrize("parallelism", (2, 4))
    def test_bit_identical_to_serial(self, events, query_fn, parallelism):
        assert _wire_outputs(query_fn, events, parallelism) == _wire_outputs(
            query_fn, events, 1
        )

    @pytest.mark.parametrize(
        "query_fn",
        (
            q3_local_item_suggestion,
            q4_category_average,
            lambda: q5_hot_items(window_seconds=3.0),
        ),
        ids=("q3", "q4", "q5"),
    )
    def test_malformed_chunk_falls_back_to_serial(self, events, query_fn):
        # An unknown tag mid-chunk must produce exactly the serial wire
        # kernel's behaviour for the whole chunk (error state included).
        poisoned = events[:500] + ["X\tnot-an-event"] + events[500:600]
        assert _wire_outputs(query_fn, poisoned, 4) == _wire_outputs(
            query_fn, poisoned, 1
        )

    @pytest.mark.parametrize(
        "query_fn",
        (
            q3_local_item_suggestion,
            q4_category_average,
            lambda: q5_hot_items(window_seconds=3.0),
        ),
        ids=("q3", "q4", "q5"),
    )
    @pytest.mark.parametrize(
        "bad_line",
        (
            "A\t9\titem\t0.5\t1\tnot-a-seller\t7\t3",
            "B\t5\t1\tnot-a-price\tnot-a-time",
        ),
        ids=("bad-auction", "bad-bid"),
    )
    def test_malformed_numeric_falls_back_to_serial(
        self, events, query_fn, bad_line
    ):
        # Numeric corruption passes the tag pre-scan and surfaces in the
        # shard phase — before any owner mutation, so the serial replay
        # must reproduce the reference prefix state and exception.
        poisoned = events[:520] + [bad_line] + events[520:620]
        assert _wire_outputs(query_fn, poisoned, 4) == _wire_outputs(
            query_fn, poisoned, 1
        )
