"""Unit tests for the shard plane: spans, knobs, and merge invariants.

The heavyweight proof that sharded execution is observationally identical
to serial lives in ``tests/engines/test_query_parallel.py`` (full matrix,
chaos, recovery).  This file pins the *unit* behaviours those suites rest
on: span arithmetic, knob parsing, thread-pool equivalence, pinned
key-insertion order after a keyed merge, and the wire kernels' serial
fallback on malformed input.
"""

from __future__ import annotations

import random

import pytest

from repro.benchmark.queries import get_query
from repro.dataflow import kernels, sharding
from repro.dataflow.compiler import lower_stage
from repro.dataflow.functions import compose
from repro.workloads.nexmark import NexmarkGenerator
from repro.workloads.nexmark_queries import (
    nexmark_decode,
    q3_local_item_suggestion,
    q4_category_average,
    q5_hot_items,
)


class TestSpansAndKnobs:
    def test_spans_cover_and_balance(self):
        for total in (0, 1, 7, 512, 1001):
            for parallelism in (1, 2, 3, 8):
                spans = sharding.shard_spans(total, parallelism)
                assert spans[0][0] == 0 and spans[-1][1] == total
                # Contiguous, non-overlapping, balanced within one record.
                sizes = []
                for (a, b), (c, _d) in zip(spans, spans[1:]):
                    assert b == c
                for a, b in spans:
                    assert b >= a
                    sizes.append(b - a)
                assert max(sizes) - min(sizes) <= 1

    def test_query_parallelism_parsing(self, monkeypatch):
        monkeypatch.delenv(sharding.QUERY_PARALLELISM_ENV, raising=False)
        assert sharding.query_parallelism() == 1
        monkeypatch.setenv(sharding.QUERY_PARALLELISM_ENV, "0")
        assert sharding.query_parallelism() == 1
        monkeypatch.setenv(sharding.QUERY_PARALLELISM_ENV, "4")
        assert sharding.query_parallelism() == 4
        monkeypatch.setenv(sharding.QUERY_PARALLELISM_ENV, "-2")
        with pytest.raises(ValueError):
            sharding.query_parallelism()

    def test_effective_parallelism_clamps_to_affinity(self, monkeypatch):
        monkeypatch.setattr(sharding, "affinity_count", lambda: 3)
        assert sharding.effective_parallelism(1) == 1
        assert sharding.effective_parallelism(3) == 3
        assert sharding.effective_parallelism(8) == 3
        monkeypatch.setattr(sharding, "affinity_count", lambda: 1)
        assert sharding.effective_parallelism(8) == 1

    def test_shard_min_chunk_parsing(self, monkeypatch):
        monkeypatch.delenv(sharding.SHARD_MIN_CHUNK_ENV, raising=False)
        assert sharding.shard_min_chunk() == sharding.SHARD_MIN_CHUNK
        monkeypatch.setenv(sharding.SHARD_MIN_CHUNK_ENV, "64")
        assert sharding.shard_min_chunk() == 64
        # Clamped to >= 1: a zero/negative threshold means "always shard".
        monkeypatch.setenv(sharding.SHARD_MIN_CHUNK_ENV, "0")
        assert sharding.shard_min_chunk() == 1
        monkeypatch.setenv(sharding.SHARD_MIN_CHUNK_ENV, "-7")
        assert sharding.shard_min_chunk() == 1
        monkeypatch.setenv(sharding.SHARD_MIN_CHUNK_ENV, "not-a-number")
        with pytest.raises(ValueError):
            sharding.shard_min_chunk()

    def test_shard_min_chunk_honours_monkeypatched_global(self, monkeypatch):
        monkeypatch.delenv(sharding.SHARD_MIN_CHUNK_ENV, raising=False)
        monkeypatch.setattr(sharding, "SHARD_MIN_CHUNK", 16)
        assert sharding.shard_min_chunk() == 16

    @pytest.mark.parametrize("boundary", (8, 32))
    def test_bypass_boundary_is_exact(self, monkeypatch, boundary):
        """Chunks below the knob take the serial path, at the knob shard."""
        monkeypatch.setenv(sharding.SHARD_MIN_CHUNK_ENV, str(boundary))
        calls = []
        real = sharding.run_shard_tasks

        def counting(tasks):
            calls.append(len(tasks))
            return real(tasks)

        monkeypatch.setattr(sharding, "run_shard_tasks", counting)
        function = get_query("statistics").make_function(random.Random(3))
        kernel = lower_stage(function, parallelism=2)
        kernel(_lines(boundary - 1))
        assert calls == []
        kernel(_lines(boundary))
        assert calls == [2]


def _lines(count: int, seed: int = 7) -> list[str]:
    rng = random.Random(seed)
    words = ["alpha", "beta", "gamma", "delta", "web", "search"]
    return [
        "\t".join(
            (
                str(rng.randrange(100)),
                " ".join(rng.choice(words) for _ in range(3)),
                # Fixed-width AOL QueryTime so the windowed query parses.
                f"2006-03-{rng.randrange(1, 29):02d} "
                f"{rng.randrange(24):02d}:{rng.randrange(60):02d}"
                f":{rng.randrange(60):02d}",
            )
        )
        for _ in range(count)
    ]


def _serial_and_sharded(query: str, parallelism: int, chunks: list) -> tuple:
    """Run one stateful query serially and sharded over the same chunks.

    Returns ((serial outputs, serial state), (sharded outputs, sharded
    state)) where state includes the *insertion order* of the owner dict —
    the bit the merge must pin for finish()/snapshot equivalence.
    """
    results = []
    for p in (1, parallelism):
        function = get_query(query).make_function(random.Random(3))
        kernel = lower_stage(function, parallelism=p)
        outputs = [kernel(chunk) for chunk in chunks]
        kernel.flush()
        state = {
            name: (dict(value), list(value))
            for name, value in vars(function).items()
            if isinstance(value, dict)
        }
        sets = {
            name: sorted(value)
            for name, value in vars(function).items()
            if isinstance(value, set)
        }
        results.append((outputs, state, sets))
    return results[0], results[1]


class TestKeyedSharding:
    @pytest.mark.parametrize("query", ("wordcount", "distinct-count"))
    @pytest.mark.parametrize("parallelism", (2, 3, 4))
    def test_bit_identical_to_serial(self, query, parallelism):
        lines = _lines(600)
        chunks = [lines[:250], lines[250:251], [], lines[251:]]
        serial, sharded = _serial_and_sharded(query, parallelism, chunks)
        assert sharded == serial

    def test_merge_pins_key_insertion_order(self):
        lines = _lines(400)
        serial, sharded = _serial_and_sharded("wordcount", 4, [lines])
        # Not just equal dicts: the same first-occurrence insertion order.
        for name in serial[1]:
            assert sharded[1][name][1] == serial[1][name][1]

    def test_sharded_kernel_engages(self):
        function = get_query("wordcount").make_function(random.Random(3))
        kernel = lower_stage(function, parallelism=2)
        assert isinstance(kernel, sharding.ShardedStatefulKernel)
        serial = lower_stage(
            get_query("wordcount").make_function(random.Random(3)), parallelism=1
        )
        assert not isinstance(serial, sharding.ShardedStatefulKernel)


class TestPureSharding:
    def test_thread_pool_matches_sequential(self, monkeypatch):
        spec_chain = [kernels.KernelSpec.contains("web")]
        lines = _lines(2_000)
        baseline = sharding.shard_pure_chain(spec_chain, 3)(lines)
        monkeypatch.setattr(sharding, "FORCE_THREADS", True)
        threaded = sharding.shard_pure_chain(spec_chain, 3)(lines)
        assert threaded == baseline
        assert baseline == [line for line in lines if "web" in line]

    def test_small_chunks_bypass_split(self):
        chain = sharding.shard_pure_chain([kernels.KernelSpec.contains("web")], 4)
        assert isinstance(chain, sharding.ShardedPureKernel)
        few = _lines(10)
        assert chain(few) == [line for line in few if "web" in line]


def _wire_outputs(query_fn, events: list, parallelism: int) -> tuple:
    composed = compose([nexmark_decode(), query_fn()])
    composed.open()
    kernel = lower_stage(composed, parallelism=parallelism)
    outputs = []
    error = None
    try:
        outputs = [kernel(events[:1500]), kernel(events[1500:])]
    except Exception as exc:  # malformed input: compare error + state
        error = (type(exc).__name__, str(exc))
    kernel.flush()
    snapshot = composed.snapshot() if hasattr(composed, "snapshot") else None
    finish = list(composed.finish())
    composed.close()
    return outputs, error, snapshot, finish


class TestWireSharding:
    @pytest.fixture(scope="class")
    def events(self):
        return NexmarkGenerator(3_000, seed=11).encoded()

    @pytest.mark.parametrize(
        "query_fn",
        (
            q3_local_item_suggestion,
            q4_category_average,
            lambda: q5_hot_items(window_seconds=3.0),
        ),
        ids=("q3", "q4", "q5"),
    )
    @pytest.mark.parametrize("parallelism", (2, 4))
    def test_bit_identical_to_serial(self, events, query_fn, parallelism):
        assert _wire_outputs(query_fn, events, parallelism) == _wire_outputs(
            query_fn, events, 1
        )

    @pytest.mark.parametrize(
        "query_fn",
        (
            q3_local_item_suggestion,
            q4_category_average,
            lambda: q5_hot_items(window_seconds=3.0),
        ),
        ids=("q3", "q4", "q5"),
    )
    def test_malformed_chunk_falls_back_to_serial(self, events, query_fn):
        # An unknown tag mid-chunk must produce exactly the serial wire
        # kernel's behaviour for the whole chunk (error state included).
        poisoned = events[:500] + ["X\tnot-an-event"] + events[500:600]
        assert _wire_outputs(query_fn, poisoned, 4) == _wire_outputs(
            query_fn, poisoned, 1
        )

    @pytest.mark.parametrize(
        "query_fn",
        (
            q3_local_item_suggestion,
            q4_category_average,
            lambda: q5_hot_items(window_seconds=3.0),
        ),
        ids=("q3", "q4", "q5"),
    )
    @pytest.mark.parametrize(
        "bad_line",
        (
            "A\t9\titem\t0.5\t1\tnot-a-seller\t7\t3",
            "B\t5\t1\tnot-a-price\tnot-a-time",
        ),
        ids=("bad-auction", "bad-bid"),
    )
    def test_malformed_numeric_falls_back_to_serial(
        self, events, query_fn, bad_line
    ):
        # Numeric corruption passes the tag pre-scan and surfaces in the
        # shard phase — before any owner mutation, so the serial replay
        # must reproduce the reference prefix state and exception.
        poisoned = events[:520] + [bad_line] + events[520:620]
        assert _wire_outputs(query_fn, poisoned, 4) == _wire_outputs(
            query_fn, poisoned, 1
        )


# ---------------------------------------------------------------------------
# order-sensitive kernels: split-stream RNG, extract/fold, pane partitioning
# ---------------------------------------------------------------------------


def _windowed_sum():
    from repro.beam import FixedWindows
    from repro.dataflow.windowing import WindowedAggregateFunction

    def guard_sum(acc, value):
        if value > 900.0:
            raise RuntimeError(f"poisoned value {value}")
        return acc + value

    return WindowedAggregateFunction(
        window_fn=FixedWindows(10.0),
        key_fn=lambda v: int(v) % 5,
        timestamp_fn=float,
        reducer=guard_sum,
        initial=0.0,
        name="WindowedSum",
    )


def _run_order_sensitive(make_function, values, parallelism, chunks=2):
    """Run one function's kernel at ``parallelism``; capture every observable.

    Returns (outputs, error, owner state incl. dict insertion order,
    finish results) — the exact serial-reference surface the sharded
    kernels must reproduce, error state included.
    """
    function = make_function()
    function.open()
    kernel = lower_stage(function, parallelism=parallelism)
    outputs = []
    error = None
    step = max(1, len(values) // chunks)
    try:
        for start in range(0, len(values), step):
            outputs.append(kernel(values[start : start + step]))
    except Exception as exc:
        error = (type(exc).__name__, str(exc))
    kernel.flush()
    state = {
        name: (dict(value), list(value))
        for name, value in vars(function).items()
        if isinstance(value, dict)
    }
    scalars = {
        name: value
        for name, value in vars(function).items()
        if isinstance(value, (int, float))
    }
    finish = list(function.finish())
    function.close()
    return outputs, error, state, scalars, finish


class TestOrderSensitiveSharding:
    @pytest.fixture(autouse=True)
    def _engage(self, monkeypatch):
        monkeypatch.setattr(sharding, "SHARD_MIN_CHUNK", 16)

    def test_new_kernels_engage(self):
        sample = get_query("sample").make_function(random.Random(5))
        assert isinstance(
            lower_stage(sample, parallelism=4), sharding.ShardedSampleKernel
        )
        stats = get_query("statistics").make_function(random.Random(5))
        assert isinstance(
            lower_stage(stats, parallelism=4),
            sharding.ShardedStatisticsKernel,
        )
        windowed = get_query("windowed").make_function(random.Random(5))
        assert isinstance(
            lower_stage(windowed, parallelism=4),
            sharding.ShardedWindowedAggregateKernel,
        )
        # P = 1 keeps the plain serial kernels.
        assert not isinstance(
            lower_stage(
                get_query("sample").make_function(random.Random(5)),
                parallelism=1,
            ),
            sharding.ShardedSampleKernel,
        )

    @pytest.mark.parametrize("parallelism", (2, 3, 4))
    def test_sample_split_stream_bit_identical(self, parallelism):
        lines = _lines(1_200)

        def run(p):
            rng = random.Random(41)
            function = get_query("sample").make_function(rng)
            kernel = lower_stage(function, parallelism=p)
            outputs = [kernel(lines[:700]), kernel(lines[700:])]
            kernel.flush()
            # The post-chunk generator state is part of the contract: the
            # next draw anywhere downstream must see the serial stream.
            return outputs, rng.getstate()

        assert run(parallelism) == run(1)

    def test_sample_serial_reference_path_without_numpy(self):
        lines = _lines(800)
        rng = random.Random(41)
        serial = kernels.SampleKernel(0.4, random.Random(41))
        expected = [serial(lines[:500]), serial(lines[500:])]
        sharded = sharding.ShardedSampleKernel(0.4, rng, 4)
        sharded._bulk = False  # NumPy-less host: per-record reference
        assert [sharded(lines[:500]), sharded(lines[500:])] == expected
        serial.flush(), sharded.flush()
        assert rng.getstate() == serial.rng.getstate()

    @pytest.mark.parametrize("parallelism", (2, 3, 4))
    def test_statistics_extract_fold_bit_identical(self, parallelism):
        lines = _lines(900)
        serial = _run_order_sensitive(
            lambda: get_query("statistics").make_function(random.Random(3)),
            lines,
            1,
        )
        assert (
            _run_order_sensitive(
                lambda: get_query("statistics").make_function(random.Random(3)),
                lines,
                parallelism,
            )
            == serial
        )

    def test_statistics_malformed_input_reproduces_serial_error_state(self):
        # A non-string record raises in extraction — strictly before any
        # accumulator mutation — so the sharded fallback must reproduce
        # the serial kernel's error state exactly: untouched accumulators
        # and the identical exception from the identical record.
        poisoned = _lines(300) + [None] + _lines(60, seed=9)
        make = lambda: get_query("statistics").make_function(random.Random(3))
        serial = _run_order_sensitive(make, poisoned, 1, chunks=1)
        sharded = _run_order_sensitive(make, poisoned, 4, chunks=1)
        assert sharded == serial
        assert serial[1] is not None  # the poison actually bit

    @pytest.mark.parametrize("parallelism", (2, 3, 4))
    def test_windowed_pane_partition_bit_identical(self, parallelism):
        rng = random.Random(13)
        values = [rng.uniform(0.0, 200.0) for _ in range(1_000)]
        serial = _run_order_sensitive(_windowed_sum, values, 1)
        sharded = _run_order_sensitive(_windowed_sum, values, parallelism)
        assert sharded == serial
        # Not just equal dicts: the same first-occurrence pane order.
        assert sharded[2]["panes"][1] == serial[2]["panes"][1]
        assert serial[4]  # panes actually fired at finish

    def test_windowed_counting_query_bit_identical(self):
        lines = _lines(800)
        make = lambda: get_query("windowed").make_function(random.Random(3))
        assert _run_order_sensitive(make, lines, 4) == _run_order_sensitive(
            make, lines, 1
        )

    def test_windowed_malformed_timestamp_reproduces_serial_error_state(self):
        rng = random.Random(13)
        values = [rng.uniform(0.0, 200.0) for _ in range(400)]
        poisoned = values[:350] + ["not-a-timestamp"] + values[350:]
        serial = _run_order_sensitive(_windowed_sum, poisoned, 1, chunks=1)
        sharded = _run_order_sensitive(_windowed_sum, poisoned, 4, chunks=1)
        assert sharded == serial
        assert serial[1] is not None

    def test_windowed_degenerate_timestamp_matches_serial(self):
        # inf collapses the window bounds; the sharded driver defers to
        # the serial kernel, which delegates validation to the window fn.
        rng = random.Random(13)
        values = [rng.uniform(0.0, 200.0) for _ in range(400)]
        poisoned = values[:380] + [float("inf")] + values[380:]
        assert _run_order_sensitive(
            _windowed_sum, poisoned, 4, chunks=1
        ) == _run_order_sensitive(_windowed_sum, poisoned, 1, chunks=1)

    def test_windowed_reducer_error_reproduces_serial_error_state(self):
        # The reducer raises mid-fold on a shard: shard-local dicts only
        # were touched, so the serial replay must reproduce the reference
        # prefix pane mutations plus the identical exception.
        rng = random.Random(13)
        values = [rng.uniform(0.0, 200.0) for _ in range(400)]
        poisoned = values[:310] + [950.0] + values[310:]
        serial = _run_order_sensitive(_windowed_sum, poisoned, 1, chunks=1)
        sharded = _run_order_sensitive(_windowed_sum, poisoned, 4, chunks=1)
        assert sharded == serial
        assert serial[1] == ("RuntimeError", "poisoned value 950.0")
        assert serial[2]["panes"][0]  # prefix panes were mutated

    def test_aftercount_trigger_keeps_reference_tier(self):
        from repro.beam import FixedWindows
        from repro.beam.window import AfterCount
        from repro.dataflow.windowing import WindowedAggregateFunction

        function = WindowedAggregateFunction(
            window_fn=FixedWindows(10.0),
            key_fn=lambda v: int(v) % 5,
            timestamp_fn=float,
            trigger=AfterCount(8),
            name="Triggered",
        )
        # No spec at all: mid-stream firing never lowers to any kernel
        # tier, so there is nothing to shard (the documented honest edge).
        assert lower_stage(function, parallelism=4) is None
