"""Unit tests for keyed windowed aggregation (``repro.dataflow.windowing``).

Pins :class:`WindowedAggregateFunction`'s semantics — window assignment,
pane accumulation, trigger firing, drain and snapshot/restore — plus the
trigger gating of its kernel spec.
"""

from __future__ import annotations

import pytest

from repro.beam.window import AfterCount, AfterWatermark, FixedWindows, IntervalWindow
from repro.dataflow.windowing import WindowedAggregateFunction


def make(**kwargs):
    defaults = dict(
        window_fn=FixedWindows(10.0),
        key_fn=lambda v: v[0],
        timestamp_fn=lambda v: v[1],
    )
    defaults.update(kwargs)
    return WindowedAggregateFunction(**defaults)


class TestCountingPanes:
    def test_counts_per_key_and_window(self):
        fn = make()
        for value in [("a", 1.0), ("a", 2.0), ("b", 3.0), ("a", 11.0)]:
            assert fn.process(value) == ()
        assert list(fn.finish()) == [
            ("a", IntervalWindow(0.0, 10.0), 2),
            ("b", IntervalWindow(0.0, 10.0), 1),
            ("a", IntervalWindow(10.0, 20.0), 1),
        ]

    def test_filter_drops_before_assignment(self):
        fn = make(filter_fn=lambda v: v[0] != "skip")
        fn.process(("skip", float("nan")))  # never reaches the window fn
        fn.process(("a", 1.0))
        assert list(fn.finish()) == [("a", IntervalWindow(0.0, 10.0), 1)]

    def test_custom_reducer_folds_from_initial(self):
        fn = make(reducer=lambda acc, v: acc + v[2], initial=100)
        fn.process(("a", 1.0, 5))
        fn.process(("a", 2.0, 7))
        assert list(fn.finish()) == [("a", IntervalWindow(0.0, 10.0), 112)]

    def test_open_clears_state(self):
        fn = make()
        fn.process(("a", 1.0))
        fn.open()
        assert fn.panes == {} and fn.pane_counts == {}


class TestTriggers:
    def test_after_count_fires_accumulating_panes(self):
        fn = make(trigger=AfterCount(2))
        assert fn.process(("a", 1.0)) == ()
        assert fn.process(("a", 2.0)) == (("a", IntervalWindow(0.0, 10.0), 2),)
        assert fn.process(("a", 3.0)) == ()
        # Final firing at drain covers the unfired remainder only.
        assert list(fn.finish()) == [("a", IntervalWindow(0.0, 10.0), 3)]

    def test_after_count_exact_multiple_skips_final_firing(self):
        fn = make(trigger=AfterCount(2))
        fn.process(("a", 1.0))
        fn.process(("a", 2.0))
        assert list(fn.finish()) == []

    def test_after_watermark_behaves_trigger_less(self):
        fn = make(trigger=AfterWatermark())
        assert fn.process(("a", 1.0)) == ()
        assert list(fn.finish()) == [("a", IntervalWindow(0.0, 10.0), 1)]

    def test_unsupported_trigger_rejected(self):
        with pytest.raises(ValueError, match="unsupported trigger"):
            make(trigger=object())

    def test_spec_gated_on_trigger(self):
        """Trigger-less (and AfterWatermark) declare the kernel spec;
        AfterCount must not — its mid-stream firing stays off the kernel
        tier (a documented fallback edge)."""
        assert make().kernel_spec is not None
        assert make(trigger=AfterWatermark()).kernel_spec is not None
        assert getattr(make(trigger=AfterCount(3)), "kernel_spec", None) is None


class TestSnapshotRestore:
    def test_round_trip(self):
        fn = make(trigger=AfterCount(2))
        fn.process(("a", 1.0))
        fn.process(("b", 2.0))
        state = fn.snapshot()
        replica = make(trigger=AfterCount(2))
        replica.restore(state)
        # Divergence after restore proves the copies are independent…
        fn.process(("c", 3.0))
        assert ("c", 0.0, 10.0) not in replica.panes
        # …and the replica continues exactly where the snapshot was taken.
        assert replica.process(("a", 4.0)) == (("a", IntervalWindow(0.0, 10.0), 2),)

    def test_snapshot_is_deep_enough(self):
        fn = make()
        fn.process(("a", 1.0))
        state = fn.snapshot()
        fn.process(("a", 2.0))
        assert state[0][("a", 0.0, 10.0)] == 1
