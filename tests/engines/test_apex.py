"""Tests for the Apex-like engine on YARN."""

import pytest

from repro.engines.apex import (
    ApexLauncher,
    CollectOutputOperator,
    DAG,
    DagValidationError,
    FilterOperator,
    FlatMapOperator,
    KafkaSinglePortInputOperator,
    KafkaSinglePortOutputOperator,
    MapOperator,
)
from repro.engines.apex.operators import CollectionInputOperator, PassThroughOperator
from repro.simtime import Simulator
from repro.yarn import YarnCluster


@pytest.fixture
def yarn(sim):
    return YarnCluster(sim)


def linear_dag(values, *operators):
    dag = DAG("test-app")
    source = dag.add_operator("input", CollectionInputOperator(values))
    previous = source.output
    for index, operator in enumerate(operators):
        node = dag.add_operator(f"op{index}", operator)
        dag.add_stream(f"s{index}", previous, node.input)
        previous = node.output
    sink = dag.add_operator("output", CollectOutputOperator())
    dag.add_stream("out", previous, sink.input)
    return dag, sink


class TestDagConstruction:
    def test_duplicate_operator_name(self):
        dag = DAG()
        dag.add_operator("a", CollectionInputOperator([]))
        with pytest.raises(DagValidationError):
            dag.add_operator("a", CollectOutputOperator())

    def test_stream_requires_registered_operators(self):
        dag = DAG()
        src = CollectionInputOperator([])
        sink = CollectOutputOperator()
        dag.add_operator("src", src)
        with pytest.raises(DagValidationError):
            dag.add_stream("s", src.output, sink.input)

    def test_input_port_connected_once(self):
        dag = DAG()
        src = dag.add_operator("src", CollectionInputOperator([]))
        mid = dag.add_operator("mid", PassThroughOperator())
        sink = dag.add_operator("sink", CollectOutputOperator())
        dag.add_stream("a", src.output, sink.input)
        with pytest.raises(DagValidationError):
            dag.add_stream("b", mid.output, sink.input)

    def test_validate_empty(self):
        with pytest.raises(DagValidationError):
            DAG().validate()

    def test_validate_needs_one_input(self):
        dag = DAG()
        dag.add_operator("out", CollectOutputOperator())
        with pytest.raises(DagValidationError):
            dag.validate()

    def test_validate_disconnected(self):
        dag = DAG()
        dag.add_operator("in", CollectionInputOperator([]))
        dag.add_operator("mid", PassThroughOperator())
        dag.add_operator("out", CollectOutputOperator())
        with pytest.raises(DagValidationError):
            dag.validate()

    def test_validate_linear_ok(self):
        dag, _ = linear_dag([1], PassThroughOperator())
        assert [op.name for op in dag.validate()] == ["input", "op0", "output"]

    def test_attributes(self):
        dag = DAG()
        dag.set_attribute("VCORES_PER_OPERATOR", 2)
        assert dag.attributes["VCORES_PER_OPERATOR"] == 2


class TestExecution:
    def test_filter_operator(self, yarn):
        dag, sink = linear_dag(list(range(10)), FilterOperator(lambda v: v < 3))
        result = ApexLauncher(yarn).launch(dag)
        assert sink.values == [0, 1, 2]
        assert result.records_in == 10
        assert result.records_out == 3
        assert result.engine == "apex"

    def test_map_and_flat_map(self, yarn):
        dag, sink = linear_dag(
            ["a b", "c"], FlatMapOperator(str.split), MapOperator(str.upper)
        )
        ApexLauncher(yarn).launch(dag)
        assert sink.values == ["A", "B", "C"]

    def test_kafka_roundtrip(self, sim, broker, admin, ingested_lines):
        admin.create_topic("out")
        yarn = YarnCluster(sim)
        dag = DAG("grep")
        src = dag.add_operator("in", KafkaSinglePortInputOperator(broker, "in"))
        flt = dag.add_operator("grep", FilterOperator(lambda line: "test" in line))
        out = dag.add_operator("out", KafkaSinglePortOutputOperator(broker, "out"))
        dag.add_stream("lines", src.output, flt.input)
        dag.add_stream("matches", flt.output, out.input)
        ApexLauncher(yarn).launch(dag)
        expected = [line for line in ingested_lines if "test" in line]
        assert broker.topic("out").partition(0).read_values(0) == expected

    def test_containers_released_after_run(self, yarn):
        dag, _ = linear_dag([1], PassThroughOperator())
        ApexLauncher(yarn).launch(dag)
        assert (
            yarn.resource_manager.available_resources()
            == yarn.resource_manager.total_capacity()
        )

    def test_one_container_per_operator_plus_stram(self, yarn):
        dag, _ = linear_dag([1], PassThroughOperator())
        ApexLauncher(yarn).launch(dag)
        report = list(yarn.resource_manager.applications.values())[0]
        # STRAM AM + 3 operators
        assert len(report.container_ids) == 4

    def test_vcores_attribute_sets_parallelism(self, yarn):
        dag, _ = linear_dag([1], PassThroughOperator())
        dag.set_attribute("VCORES_PER_OPERATOR", 2)
        result = ApexLauncher(yarn).launch(dag)
        assert all(node.parallelism == 2 for node in result.plan.nodes)

    def test_higher_vcores_cost_more_per_record(self, sim):
        def run(vcores):
            local = Simulator(seed=5)
            yarn = YarnCluster(local)
            dag, _ = linear_dag(list(range(2000)), PassThroughOperator())
            dag.set_attribute("VCORES_PER_OPERATOR", vcores)
            return ApexLauncher(yarn).launch(dag).base_duration

        assert run(2) > run(1)

    def test_container_local_stream_skips_buffer_server(self, sim):
        def run(locality):
            local = Simulator(seed=5)
            yarn = YarnCluster(local)
            dag = DAG("loc")
            src = dag.add_operator("in", CollectionInputOperator(list(range(5000))))
            mid = dag.add_operator("mid", PassThroughOperator())
            out = dag.add_operator("out", CollectOutputOperator())
            dag.add_stream("a", src.output, mid.input, locality=locality)
            dag.add_stream("b", mid.output, out.input, locality=locality)
            return ApexLauncher(yarn).launch(dag).base_duration

        assert run("CONTAINER_LOCAL") < run("NODE_LOCAL")

    def test_plan_structure(self, yarn):
        dag, _ = linear_dag([1], FilterOperator(lambda v: True))
        result = ApexLauncher(yarn).launch(dag)
        kinds = [n.kind_label for n in result.plan.nodes]
        assert kinds == ["Data Source", "Operator", "Data Sink"]
