"""The batch fast path is observationally identical to per-record execution.

The vectorized execution path (``StreamPump.vectorized = True``, the
production default) must be a pure host-side optimisation: for every
system × query × API combination the simulated world — run durations,
broker-timestamp measurements, output topic contents, cost totals, operator
metrics — has to be **bit-identical** to the per-record reference loop.
This suite runs the full benchmark matrix both ways under one fixed seed
and compares everything.
"""

from __future__ import annotations

import random

import pytest

from repro.benchmark.config import BenchmarkConfig
from repro.benchmark.harness import StreamBenchHarness
from repro.benchmark.queries import get_query
from repro.dataflow.functions import (
    FilterFunction,
    FlatMapFunction,
    IdentityFunction,
    MapFunction,
    StreamFunction,
    compose,
)
from repro.engines.common.costs import RunVariance, StageCosts
from repro.engines.common.pump import StreamPump
from repro.engines.common.stages import PhysicalStage, StageKind
from repro.simtime import Simulator

SYSTEMS = ("flink", "spark", "apex")
QUERIES = ("identity", "sample", "projection", "grep")
KINDS = ("native", "beam")
PARALLELISMS = (1, 2)


def _campaign(vectorized: bool) -> tuple[list, dict, float]:
    """Run the full matrix one way; return (runs, outputs, final sim time).

    ``outputs`` maps each (system, query, kind, parallelism) setup to the
    output-topic values of its last executed run, read straight from the
    partition log's column storage (no consumer, so no extra clock charges
    that could mask a divergence).

    The matrix is iterated as explicit ``run_setup`` calls on one shared
    world (``run_matrix`` itself executes each cell in an isolated world —
    see ``repro.benchmark.parallel`` — which would hide the master
    harness's broker and clock from this test's introspection).
    """
    config = BenchmarkConfig(
        records=2_000,
        runs=2,
        parallelisms=PARALLELISMS,
        systems=SYSTEMS,
        queries=QUERIES,
        kinds=KINDS,
    )
    harness = StreamBenchHarness(config)
    outputs: dict[tuple, list] = {}
    original = harness._execute_once

    def capturing_execute(system, spec, kind, parallelism, rng, data_rng):
        job, measurement = original(system, spec, kind, parallelism, rng, data_rng)
        log = harness.broker.topic(config.output_topic).partition(0)
        outputs[(system, spec.name, kind, parallelism)] = log.read_values(0)
        return job, measurement

    harness._execute_once = capturing_execute
    runs = []
    for system in config.systems:
        for query in config.queries:
            for kind in config.kinds:
                for parallelism in config.parallelisms:
                    runs.extend(harness.run_setup(system, query, kind, parallelism))
    return runs, outputs, harness.simulator.now()


@pytest.fixture(scope="module")
def campaigns():
    vectorized = _campaign(vectorized=True)
    mp = pytest.MonkeyPatch()
    try:
        mp.setattr(StreamPump, "vectorized", False)
        reference = _campaign(vectorized=False)
    finally:
        mp.undo()
    return vectorized, reference


class TestFullMatrixEquivalence:
    def test_run_records_bit_identical(self, campaigns):
        """Durations, measurements and counts agree for all 96 runs."""
        (vec_runs, _, _), (ref_runs, _, _) = campaigns
        assert len(vec_runs) == len(SYSTEMS) * len(QUERIES) * len(KINDS) * len(
            PARALLELISMS
        ) * 2
        assert vec_runs == ref_runs  # frozen dataclasses: exact field equality

    def test_output_topics_bit_identical(self, campaigns):
        """Every setup's output records match value for value, in order."""
        (_, vec_out, _), (_, ref_out, _) = campaigns
        assert vec_out.keys() == ref_out.keys()
        for setup, values in vec_out.items():
            assert values == ref_out[setup], f"outputs diverge for {setup}"

    def test_simulated_clock_bit_identical(self, campaigns):
        """Total simulated time of the whole campaign is exactly equal.

        This subsumes every cost charge along the way: a single extra or
        reordered charge anywhere in either path would skew the final clock.
        """
        (_, _, vec_now), (_, _, ref_now) = campaigns
        assert vec_now == ref_now


class _StatefulDedup(StreamFunction):
    """A user subclass with state and no process_batch override."""

    name = "Dedup"

    def __init__(self) -> None:
        self.seen: set = set()

    def process(self, value):
        if value in self.seen:
            return ()
        self.seen.add(value)
        return (value,)


class _RngSampler(StreamFunction):
    """A user subclass drawing per-record randomness (order-sensitive)."""

    name = "RngSampler"
    rng_draws_per_record = 1.0

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    def process(self, value):
        return (value,) if self.rng.random() < 0.5 else ()


def _pump_once(function: StreamFunction, records: list, vectorized: bool):
    pump = StreamPump(
        simulator=Simulator(seed=11),
        stages=[
            PhysicalStage("source", StageKind.SOURCE, StageCosts(per_record_in=1e-6)),
            PhysicalStage(
                "op",
                StageKind.OPERATOR,
                StageCosts(per_weight=1e-6, per_rng_draw=1e-6),
                function=function,
            ),
            PhysicalStage("sink", StageKind.SINK, StageCosts(per_record_out=1e-6)),
        ],
        variance=RunVariance(),
        rng=random.Random(11),
        chunk_size=7,  # deliberately awkward: chunks straddle everything
    )
    pump.vectorized = vectorized
    outputs: list = []
    pump.emit = outputs.extend
    result = pump.run(records)
    return result, outputs


@pytest.mark.parametrize(
    "make_function",
    [
        pytest.param(lambda: IdentityFunction(), id="identity"),
        pytest.param(lambda: MapFunction(str.upper), id="map"),
        pytest.param(lambda: FilterFunction(lambda v: "3" in v), id="filter"),
        pytest.param(
            lambda: FlatMapFunction(lambda v: v.split("-")), id="flatmap"
        ),
        pytest.param(
            lambda: compose(
                [
                    FlatMapFunction(lambda v: v.split("-")),
                    FilterFunction(lambda v: v != "x"),
                    MapFunction(str.upper),
                ]
            ),
            id="composed",
        ),
        pytest.param(lambda: _StatefulDedup(), id="stateful-fallback"),
        pytest.param(lambda: _RngSampler(random.Random(5)), id="rng-fallback"),
    ],
)
def test_function_shapes_equivalent(make_function):
    """Each function shape produces identical outputs, costs and metrics."""
    records = [f"r{i}-x-{i % 13}" for i in range(100)]
    vec_result, vec_out = _pump_once(make_function(), records, vectorized=True)
    ref_result, ref_out = _pump_once(make_function(), records, vectorized=False)
    assert vec_out == ref_out
    assert vec_result.records_out == ref_result.records_out
    assert vec_result.base_duration == ref_result.base_duration
    assert vec_result.duration == ref_result.duration
    assert vec_result.metrics == ref_result.metrics
