"""Tests for the shared broker IO helpers."""

import pytest

from repro.broker import Producer, TopicConfig
from repro.engines.common.io import BoundedKafkaReader, CollectingWriter, KafkaWriter


class TestBoundedKafkaReader:
    def test_reads_all_values_in_order(self, broker, admin):
        admin.create_topic("t")
        with Producer(broker) as producer:
            producer.send_values("t", [f"v{i}" for i in range(100)])
        reader = BoundedKafkaReader(broker, "t")
        assert reader.read_values() == [f"v{i}" for i in range(100)]

    def test_read_records_carries_timestamps(self, sim, broker, admin):
        admin.create_topic("t")
        with Producer(broker, batch_size=1) as producer:
            producer.send("t", "a")
            sim.charge(1.0)
            producer.send("t", "b")
        records = BoundedKafkaReader(broker, "t").read_records()
        assert records[1].timestamp > records[0].timestamp

    def test_reads_across_partitions(self, broker):
        broker.create_topic("multi", TopicConfig(num_partitions=3))
        with Producer(broker) as producer:
            for i in range(9):
                producer.send("multi", i)
        values = BoundedKafkaReader(broker, "multi").read_values()
        assert sorted(values) == list(range(9))

    def test_fast_and_slow_paths_agree(self, broker, admin):
        admin.create_topic("t")
        with Producer(broker) as producer:
            producer.send_values("t", list(range(50)))
        reader = BoundedKafkaReader(broker, "t")
        assert reader.read_values() == [r.value for r in reader.read_records()]

    def test_charges_simulated_time(self, sim, broker, admin):
        admin.create_topic("t")
        with Producer(broker) as producer:
            producer.send_values("t", list(range(1000)))
        before = sim.now()
        BoundedKafkaReader(broker, "t").read_values()
        assert sim.now() > before

    def test_empty_topic(self, broker, admin):
        admin.create_topic("t")
        assert BoundedKafkaReader(broker, "t").read_values() == []


class TestKafkaWriter:
    def test_chunks_get_increasing_timestamps(self, sim, broker, admin):
        admin.create_topic("t")
        writer = KafkaWriter(broker, "t")
        writer.write_chunk(["a", "b"])
        sim.charge(2.0)
        writer.write_chunk(["c"])
        writer.close()
        log = broker.topic("t").partition(0)
        assert log.last_timestamp() - log.first_timestamp() >= 2.0
        assert writer.records_written == 3

    def test_empty_chunk_is_noop(self, broker, admin):
        admin.create_topic("t")
        writer = KafkaWriter(broker, "t")
        writer.write_chunk([])
        writer.close()
        assert broker.topic("t").total_records() == 0


class TestCollectingWriter:
    def test_collects_in_order(self):
        writer = CollectingWriter()
        writer.write_chunk([1, 2])
        writer.write_chunk([3])
        writer.close()
        assert writer.values == [1, 2, 3]
