"""Unit tests for the engine cost models and traits."""

import pytest

from repro.engines.apex.config import APEX_TRAITS, ApexCostModel
from repro.engines.common.results import JobResult
from repro.engines.flink.config import FLINK_TRAITS, FlinkCostModel
from repro.engines.spark.config import SPARK_TRAITS, SparkCostModel
from repro.dataflow.metrics import JobMetrics
from repro.dataflow.plan import ExecutionPlan


class TestFlinkCostModel:
    def test_parallelism_increases_source_cost(self):
        model = FlinkCostModel()
        assert (
            model.source_costs(2).per_record_in > model.source_costs(1).per_record_in
        )

    def test_chained_operator_pays_no_hop(self):
        model = FlinkCostModel()
        chained = model.operator_costs(chained_after_previous=True)
        unchained = model.operator_costs(chained_after_previous=False)
        assert chained.per_record_in == 0.0
        assert unchained.per_record_in == model.hop_per_record

    def test_hash_input_costs_more_than_forward(self):
        model = FlinkCostModel()
        hashed = model.operator_costs(chained_after_previous=False, hash_input=True)
        forward = model.operator_costs(chained_after_previous=False)
        assert hashed.per_record_in > forward.per_record_in

    def test_sink_includes_hop_and_write(self):
        model = FlinkCostModel()
        sink = model.sink_costs()
        assert sink.per_record_in == model.hop_per_record
        assert sink.per_record_out == model.sink_per_record


class TestSparkCostModel:
    def test_batch_overhead_grows_with_parallelism(self):
        model = SparkCostModel()
        assert model.batch_overhead(2) > model.batch_overhead(1)

    def test_compute_is_much_cheaper_than_flink(self):
        # the constant behind "native Spark is fastest" (docs/calibration.md)
        assert SparkCostModel().op_per_weight < FlinkCostModel().op_per_weight / 10

    def test_shuffle_costs_more_than_pipelined(self):
        model = SparkCostModel()
        assert (
            model.operator_costs(shuffle_input=True).per_record_in
            > model.operator_costs(shuffle_input=False).per_record_in
        )


class TestApexCostModel:
    def test_source_is_most_expensive_native_source(self):
        assert (
            ApexCostModel().source_per_record
            > FlinkCostModel().source_per_record
        )
        assert (
            ApexCostModel().source_per_record
            > SparkCostModel().source_per_record
        )

    def test_operator_entered_via_buffer_server(self):
        model = ApexCostModel()
        assert model.operator_costs().per_record_in == model.hop_per_record

    def test_container_resource_is_one_vcore(self):
        assert ApexCostModel().container_resource.vcores == 1


class TestTraits:
    def test_table1_rows(self):
        assert FLINK_TRAITS.row()[0] == "Apache Flink"
        assert SPARK_TRAITS.row()[3] == "Batch"
        assert APEX_TRAITS.row()[2] == "Java"

    def test_all_exactly_once(self):
        for traits in (FLINK_TRAITS, SPARK_TRAITS, APEX_TRAITS):
            assert traits.row()[4] == "Exactly-once"


class TestJobResult:
    def test_summary_line(self):
        result = JobResult(
            job_name="grep",
            engine="flink",
            records_in=100,
            records_out=3,
            duration=1.234,
            plan=ExecutionPlan("grep"),
            metrics=JobMetrics("grep"),
        )
        summary = result.summary()
        assert "flink:grep" in summary
        assert "in=100" in summary
        assert "1.234" in summary
