"""Tests for the Flink-like engine."""

import pytest

from repro.broker import Producer
from repro.engines.common.translate import PipelineShapeError
from repro.engines.flink import (
    CollectSink,
    FlinkCluster,
    KafkaSink,
    KafkaSource,
    NoResourceAvailableError,
    StreamExecutionEnvironment,
)
from repro.engines.flink.errors import JobGraphError
from repro.simtime import Simulator


@pytest.fixture
def cluster(sim):
    return FlinkCluster(sim)


def env_for(cluster):
    return StreamExecutionEnvironment(cluster)


class TestDataStreamApi:
    def test_map(self, cluster):
        env = env_for(cluster)
        sink = CollectSink()
        env.from_collection([1, 2, 3]).map(lambda v: v * 2).add_sink(sink)
        env.execute("map-job")
        assert sink.values == [2, 4, 6]

    def test_filter(self, cluster):
        env = env_for(cluster)
        sink = CollectSink()
        env.from_collection(range(10)).filter(lambda v: v % 2 == 0).add_sink(sink)
        env.execute()
        assert sink.values == [0, 2, 4, 6, 8]

    def test_flat_map(self, cluster):
        env = env_for(cluster)
        sink = CollectSink()
        env.from_collection(["a b", "c"]).flat_map(str.split).add_sink(sink)
        env.execute()
        assert sink.values == ["a", "b", "c"]

    def test_chained_transformations(self, cluster):
        env = env_for(cluster)
        sink = CollectSink()
        (
            env.from_collection(range(10))
            .filter(lambda v: v > 3)
            .map(lambda v: v * 10)
            .filter(lambda v: v < 90)
            .add_sink(sink)
        )
        env.execute()
        assert sink.values == [40, 50, 60, 70, 80]

    def test_key_by_reduce_running_aggregate(self, cluster):
        env = env_for(cluster)
        sink = CollectSink()
        (
            env.from_collection(["a", "b", "a", "a"])
            .key_by(lambda v: v)
            .reduce(lambda acc, v: acc + v, value_selector=lambda v: 1)
            .add_sink(sink)
        )
        env.execute()
        assert sink.values == [("a", 1), ("b", 1), ("a", 2), ("a", 3)]

    def test_keyed_sum(self, cluster):
        env = env_for(cluster)
        sink = CollectSink()
        (
            env.from_collection([("x", 2), ("x", 5), ("y", 1)])
            .key_by(lambda kv: kv[0])
            .sum(lambda kv: kv[1])
            .add_sink(sink)
        )
        env.execute()
        assert sink.values == [("x", 2), ("x", 7), ("y", 1)]

    def test_execute_without_sink_raises(self, cluster):
        env = env_for(cluster)
        env.from_collection([1])
        with pytest.raises(JobGraphError):
            env.execute()

    def test_invalid_parallelism(self, cluster):
        with pytest.raises(ValueError):
            env_for(cluster).set_parallelism(0)

    def test_result_counts(self, cluster):
        env = env_for(cluster)
        sink = CollectSink()
        env.from_collection(range(100)).filter(lambda v: v < 10).add_sink(sink)
        result = env.execute("counting")
        assert result.records_in == 100
        assert result.records_out == 10
        assert result.engine == "flink"


class TestKafkaIntegration:
    def test_kafka_roundtrip(self, sim, broker, admin, ingested_lines):
        admin.create_topic("out")
        cluster = FlinkCluster(sim)
        env = env_for(cluster)
        env.add_source(KafkaSource(broker, "in")).filter(
            lambda line: "test" in line
        ).add_sink(KafkaSink(broker, "out"))
        result = env.execute("grep")
        expected = [line for line in ingested_lines if "test" in line]
        out_values = broker.topic("out").partition(0).read_values(0)
        assert out_values == expected
        assert result.records_out == len(expected)

    def test_output_timestamps_increase(self, sim, broker, admin, ingested_lines):
        admin.create_topic("out")
        cluster = FlinkCluster(sim)
        env = env_for(cluster)
        env.add_source(KafkaSource(broker, "in")).add_sink(KafkaSink(broker, "out"))
        env.execute("identity")
        log = broker.topic("out").partition(0)
        assert log.last_timestamp() >= log.first_timestamp()


class TestChainingAndPlan:
    def test_native_grep_plan_has_three_elements(self, cluster):
        """Figure 12: source, filter, sink."""
        env = env_for(cluster)
        sink = CollectSink()
        env.from_collection(["x"]).filter(lambda v: True, name="Filter").add_sink(sink)
        result = env.execute("grep")
        assert len(result.plan) == 3
        labels = [n.kind_label for n in result.plan.nodes]
        assert labels == ["Data Source", "Operator", "Data Sink"]

    def test_consecutive_operators_chain_into_one_stage(self, cluster):
        env = env_for(cluster)
        sink = CollectSink()
        (
            env.from_collection(range(5))
            .map(lambda v: v)
            .map(lambda v: v)
            .map(lambda v: v)
            .add_sink(sink)
        )
        result = env.execute("chained")
        # 3 logical operators fused into one stage: metrics show one
        # operator bucket between source and sink.
        operator_buckets = [
            name
            for name in result.metrics.operators
            if name not in ("Collection Source", "Sink")
        ]
        assert len(operator_buckets) == 1

    def test_chaining_reduces_cost(self, sim):
        def run(chainable):
            local = Simulator(seed=9)
            cluster = FlinkCluster(local)
            env = StreamExecutionEnvironment(cluster)
            sink = CollectSink()
            stream = env.from_collection(range(1000))
            for _ in range(3):
                stream = stream._append(
                    __import__(
                        "repro.dataflow.functions", fromlist=["MapFunction"]
                    ).MapFunction(lambda v: v),
                    "Map",
                    chainable=chainable,
                )
            stream.add_sink(sink)
            return env.execute("j").base_duration

        assert run(True) < run(False)

    def test_key_by_breaks_chain_with_hash_edge(self, cluster):
        from repro.dataflow.plan import ShipStrategy

        env = env_for(cluster)
        sink = CollectSink()
        (
            env.from_collection(["a"])
            .key_by(lambda v: v)
            .reduce(lambda a, b: a)
            .add_sink(sink)
        )
        result = env.execute("keyed")
        strategies = [e.strategy for e in result.plan.edges]
        assert ShipStrategy.HASH in strategies


class TestScheduling:
    def test_job_releases_slots(self, sim):
        cluster = FlinkCluster(sim, num_task_managers=1, slots_per_task_manager=2)
        env = env_for(cluster)
        sink = CollectSink()
        env.from_collection([1]).add_sink(sink)
        env.execute()
        assert cluster.job_manager.total_free_slots() == 2

    def test_insufficient_slots(self, sim):
        cluster = FlinkCluster(sim, num_task_managers=1, slots_per_task_manager=1)
        env = env_for(cluster)
        env.set_parallelism(2)
        sink = CollectSink()
        env.from_collection([1]).add_sink(sink)
        with pytest.raises(NoResourceAvailableError):
            env.execute()

    def test_default_cluster_matches_paper(self, sim):
        cluster = FlinkCluster(sim)
        assert len(cluster.task_managers) == 2
        assert cluster.job_manager.total_free_slots() == 16

    def test_restart_clears_jobs(self, sim):
        cluster = FlinkCluster(sim)
        cluster.job_manager.allocate_job(["v"], 4)
        cluster.restart()
        assert cluster.job_manager.total_free_slots() == 16


class TestShapeErrors:
    def test_two_sinks_rejected(self, cluster):
        env = env_for(cluster)
        stream = env.from_collection([1])
        stream.add_sink(CollectSink())
        stream.add_sink(CollectSink())
        with pytest.raises(PipelineShapeError):
            env.execute()
