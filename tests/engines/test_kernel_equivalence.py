"""The compiled-kernel tier is observationally identical to both others.

``StreamPump.use_kernels = True`` (the production default) routes
spec-declaring operators through ``repro.dataflow.kernels``.  Like the
batch path before it, this must be a pure host-side optimisation: for
every system × query × API combination the simulated world — run
durations, broker-timestamp measurements, output topic contents, cost
totals, operator metrics — has to be **bit-identical** to the batch path
and to the per-record reference loop.  This suite runs the full
benchmark matrix all three ways under one fixed seed (with the
workload-slab threshold lowered so the slab fast path is genuinely
exercised), repeats the comparison under broker chaos, and
property-tests that the sample kernel consumes the *exact same RNG
stream* as per-record draws.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

import repro.dataflow.kernels as kernels
from repro.benchmark.config import BenchmarkConfig
from repro.benchmark.harness import StreamBenchHarness
from repro.broker.faults import FaultPlan, NodeOutage
from repro.dataflow.functions import FilterFunction, IdentityFunction, compose
from repro.dataflow.kernels import KernelSpec
from repro.engines.common.costs import RunVariance, StageCosts
from repro.engines.common.pump import StreamPump
from repro.engines.common.stages import PhysicalStage, StageKind
from repro.simtime import Simulator

SYSTEMS = ("flink", "spark", "apex")
QUERIES = ("identity", "sample", "projection", "grep")
KINDS = ("native", "beam")
PARALLELISMS = (1, 2)

#: The three execution tiers as (vectorized, use_kernels).
TIERS = {
    "kernel": (True, True),
    "batch": (True, False),
    "reference": (False, False),
}


def _campaign() -> tuple[list, dict, float]:
    """Run the full matrix at the active tier; return (runs, outputs, now).

    Mirrors ``test_batch_equivalence._campaign``: explicit ``run_setup``
    calls on one shared world, with every cell's output topic captured
    straight from the partition log's column storage.
    """
    config = BenchmarkConfig(
        records=2_000,
        runs=2,
        parallelisms=PARALLELISMS,
        systems=SYSTEMS,
        queries=QUERIES,
        kinds=KINDS,
    )
    harness = StreamBenchHarness(config)
    outputs: dict[tuple, list] = {}
    original = harness._execute_once

    def capturing_execute(system, spec, kind, parallelism, rng, data_rng):
        job, measurement = original(system, spec, kind, parallelism, rng, data_rng)
        log = harness.broker.topic(config.output_topic).partition(0)
        outputs[(system, spec.name, kind, parallelism)] = log.read_values(0)
        return job, measurement

    harness._execute_once = capturing_execute
    runs = []
    for system in config.systems:
        for query in config.queries:
            for kind in config.kinds:
                for parallelism in config.parallelisms:
                    runs.extend(harness.run_setup(system, query, kind, parallelism))
    return runs, outputs, harness.simulator.now()


@pytest.fixture(scope="module")
def campaigns():
    """One full-matrix campaign per tier, slab threshold lowered.

    The matrix runs 2,000 records per cell — below the production
    ``SLAB_MIN_RECORDS`` — so the threshold is dropped for the whole
    fixture to make the kernel campaign actually take the slab path
    (the other tiers never consult it).
    """
    results = {}
    mp = pytest.MonkeyPatch()
    try:
        mp.setattr(kernels, "SLAB_MIN_RECORDS", 64)
        for tier, (vectorized, use_kernels) in TIERS.items():
            mp.setattr(StreamPump, "vectorized", vectorized)
            mp.setattr(StreamPump, "use_kernels", use_kernels)
            results[tier] = _campaign()
    finally:
        mp.undo()
    return results


class TestFullMatrixEquivalence:
    def test_run_records_bit_identical(self, campaigns):
        """Durations, measurements and counts agree for all 96 runs."""
        kernel_runs = campaigns["kernel"][0]
        assert len(kernel_runs) == len(SYSTEMS) * len(QUERIES) * len(KINDS) * len(
            PARALLELISMS
        ) * 2
        assert kernel_runs == campaigns["batch"][0]
        assert kernel_runs == campaigns["reference"][0]

    def test_output_topics_bit_identical(self, campaigns):
        """Every setup's output records match value for value, in order."""
        kernel_out = campaigns["kernel"][1]
        for other in ("batch", "reference"):
            other_out = campaigns[other][1]
            assert kernel_out.keys() == other_out.keys()
            for setup, values in kernel_out.items():
                assert values == other_out[setup], (
                    f"outputs diverge for {setup} (kernel vs {other})"
                )

    def test_simulated_clock_bit_identical(self, campaigns):
        """Total campaign simulated time is exactly equal across tiers."""
        assert (
            campaigns["kernel"][2]
            == campaigns["batch"][2]
            == campaigns["reference"][2]
        )


class TestChaosEquivalence:
    """Tier choice changes nothing under broker chaos either.

    Chaos draws ride the request sequence (guards, retries, jittered
    backoff); if any tier issued even one extra or reordered broker
    request, the fault schedule would land differently and the reports
    would diverge.
    """

    @pytest.fixture(scope="class")
    def chaos_reports(self):
        plan = FaultPlan(
            seed=5,
            error_rate=0.05,
            timeout_rate=0.02,
            latency_jitter=0.0005,
            outages=(NodeOutage(node_id=1, start=0.01, duration=0.05),),
        )
        config = BenchmarkConfig(
            records=1_500,
            runs=2,
            systems=("flink", "spark"),
            queries=("grep", "identity"),
            kinds=KINDS,
            parallelisms=(1,),
        )
        reports = {}
        mp = pytest.MonkeyPatch()
        try:
            mp.setattr(kernels, "SLAB_MIN_RECORDS", 64)
            for tier, (vectorized, use_kernels) in TIERS.items():
                mp.setattr(StreamPump, "vectorized", vectorized)
                mp.setattr(StreamPump, "use_kernels", use_kernels)
                harness = StreamBenchHarness(config, chaos=plan)
                reports[tier] = harness.run_matrix(parallel=False)
        finally:
            mp.undo()
        return reports

    def test_chaos_reports_equal_per_field(self, chaos_reports):
        assert chaos_reports["kernel"].runs == chaos_reports["reference"].runs
        assert chaos_reports["kernel"] == chaos_reports["batch"]
        assert chaos_reports["kernel"] == chaos_reports["reference"]

    def test_chaos_actually_bit(self, chaos_reports):
        """The fault plan fired (the equality above is not vacuous)."""
        assert chaos_reports["kernel"].sender_report.retries > 0


# ---------------------------------------------------------------------------
# Sample RNG stream property


def _sample_function(seed: int, fraction: float) -> FilterFunction:
    rng = random.Random(seed)
    return FilterFunction(
        lambda _v: rng.random() < fraction,
        name="Sample",
        kernel_spec=KernelSpec.bernoulli(fraction, rng),
    )


def _pump_sample(
    records: list, seed: int, fraction: float, tier: str
) -> tuple[list, object, object]:
    """Run a sample pipeline at ``tier``; return (outputs, rng state, result)."""
    vectorized, use_kernels = TIERS[tier]
    function = _sample_function(seed, fraction)
    function.open()
    pump = StreamPump(
        simulator=Simulator(seed=3),
        stages=[
            PhysicalStage("source", StageKind.SOURCE, StageCosts(per_record_in=1e-6)),
            PhysicalStage(
                "op", StageKind.OPERATOR, StageCosts(per_weight=1e-6), function=function
            ),
            PhysicalStage("sink", StageKind.SINK, StageCosts(per_record_out=1e-6)),
        ],
        variance=RunVariance(),
        rng=random.Random(3),
        chunk_size=17,  # deliberately awkward chunk boundaries
    )
    pump.vectorized = vectorized
    pump.use_kernels = use_kernels
    outputs: list = []
    pump.emit = outputs.extend
    result = pump.run(records)
    function.close()
    # The function's rng is shared with its kernel spec; after flush it
    # must hold the true post-run MT19937 state.
    return outputs, function.kernel_spec.rng.getstate(), result


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    fraction=st.floats(min_value=0.0, max_value=1.0),
    count=st.integers(min_value=0, max_value=300),
)
def test_sample_draws_identical_rng_stream(seed, fraction, count):
    """The mask kernel consumes the exact per-record Bernoulli stream.

    For any seed, fraction and input size, all three tiers must select
    the same records AND leave the Python RNG in the same state — i.e.
    the transplanted MT19937 advanced draw-for-draw identically.
    """
    records = [f"rec-{i}" for i in range(count)]
    out_ref, state_ref, result_ref = _pump_sample(records, seed, fraction, "reference")
    for tier in ("batch", "kernel"):
        outputs, state, result = _pump_sample(records, seed, fraction, tier)
        assert outputs == out_ref
        assert state == state_ref
        assert result.records_out == result_ref.records_out
        assert result.duration == result_ref.duration


def test_sample_rng_state_continues_across_runs():
    """Back-to-back kernel runs resume the stream where the last stopped."""
    records = [f"rec-{i}" for i in range(100)]

    def two_runs(tier: str):
        vectorized, use_kernels = TIERS[tier]
        function = _sample_function(99, 0.4)
        function.open()
        picked = []
        for _ in range(2):
            pump = StreamPump(
                simulator=Simulator(seed=3),
                stages=[
                    PhysicalStage(
                        "op",
                        StageKind.OPERATOR,
                        StageCosts(per_weight=1e-6),
                        function=function,
                    ),
                ],
                variance=RunVariance(),
                rng=random.Random(3),
            )
            pump.vectorized = vectorized
            pump.use_kernels = use_kernels
            pump.emit = picked.extend
            pump.run(records)
        function.close()
        return picked, function.kernel_spec.rng.getstate()

    assert two_runs("kernel") == two_runs("reference")


# ---------------------------------------------------------------------------
# Slab fast path through the pump


@pytest.fixture
def low_slab_threshold(monkeypatch):
    monkeypatch.setattr(kernels, "SLAB_MIN_RECORDS", 32)


def _grep_stages(function=None):
    from repro.workloads.aol import GREP_NEEDLE

    function = function or FilterFunction(
        lambda v: GREP_NEEDLE in v,
        name="Grep",
        kernel_spec=KernelSpec.contains(GREP_NEEDLE),
    )
    return [
        PhysicalStage("source", StageKind.SOURCE, StageCosts(per_record_in=1e-6)),
        PhysicalStage(
            "op", StageKind.OPERATOR, StageCosts(per_weight=1e-6), function=function
        ),
        PhysicalStage("sink", StageKind.SINK, StageCosts(per_record_out=1e-6)),
    ]


def _pump_stages(stages, records, tier="kernel"):
    vectorized, use_kernels = TIERS[tier]
    pump = StreamPump(
        simulator=Simulator(seed=3),
        stages=stages,
        variance=RunVariance(),
        rng=random.Random(3),
    )
    pump.vectorized = vectorized
    pump.use_kernels = use_kernels
    outputs: list = []
    pump.emit = outputs.extend
    result = pump.run(records)
    return outputs, result


class TestSlabPumpPath:
    def test_slab_path_taken_and_identical(self, low_slab_threshold, monkeypatch):
        """Above the threshold the pump serves grep from the slab scan."""
        from repro.workloads.aol import generate_records

        records = generate_records(1_000)
        calls = []
        original = kernels.GrepKernel.call_slab

        def spying(self, slab, base, values):
            calls.append(base)
            return original(self, slab, base, values)

        monkeypatch.setattr(kernels.GrepKernel, "call_slab", spying)
        outputs, _ = _pump_stages(_grep_stages(), records)
        reference, _ = _pump_stages(_grep_stages(), records, tier="reference")
        assert calls, "slab path was not taken"
        assert outputs == reference
        # Slab grep must emit the *original* record objects, not copies.
        by_identity = {id(r) for r in records}
        assert all(id(v) in by_identity for v in outputs)

    def test_leading_identity_keeps_slab_eligibility(
        self, low_slab_threshold, monkeypatch
    ):
        """An identity stage passes chunks through without breaking the
        downstream kernel's slab path (zero-copy preserves identity)."""
        from repro.workloads.aol import GREP_NEEDLE, generate_records

        records = generate_records(500)
        calls = []
        original = kernels.GrepKernel.call_slab

        def spying(self, slab, base, values):
            calls.append(base)
            return original(self, slab, base, values)

        monkeypatch.setattr(kernels.GrepKernel, "call_slab", spying)
        stages = [
            PhysicalStage(
                "wrap",
                StageKind.OPERATOR,
                StageCosts(per_weight=1e-6),
                function=IdentityFunction(),
            ),
            *_grep_stages()[1:],
        ]
        outputs, _ = _pump_stages(stages, records)
        assert calls, "identity stage broke the slab path"
        assert outputs == [v for v in records if GREP_NEEDLE in v]

    def test_transformed_chunks_leave_slab_path(self, low_slab_threshold):
        """After a non-slab transform the grep kernel gets real values."""
        from repro.workloads.aol import GREP_NEEDLE, generate_records

        records = generate_records(500)
        upper = compose(
            [
                FilterFunction(
                    lambda v: GREP_NEEDLE in v,
                    name="Grep",
                    kernel_spec=KernelSpec.contains(GREP_NEEDLE),
                ),
            ]
        )
        sample_rng = random.Random(7)
        sample = FilterFunction(
            lambda _v: sample_rng.random() < 0.5,
            name="Sample",
            kernel_spec=KernelSpec.bernoulli(0.5, sample_rng),
        )
        stages = [
            PhysicalStage(
                "sample",
                StageKind.OPERATOR,
                StageCosts(per_weight=1e-6),
                function=sample,
            ),
            PhysicalStage(
                "grep", StageKind.OPERATOR, StageCosts(per_weight=1e-6), function=upper
            ),
        ]
        outputs, _ = _pump_stages(stages, records)

        ref_rng = random.Random(7)
        expected = [
            v for v in records if ref_rng.random() < 0.5 and GREP_NEEDLE in v
        ]
        assert outputs == expected

    def test_records_with_newlines_fall_back_correctly(self, low_slab_threshold):
        """Slab build fails on embedded newlines; outputs stay exact."""
        records = [f"line-{i}\nneedle-{i}" if i % 7 == 0 else f"line-{i}" for i in range(200)]
        function = FilterFunction(
            lambda v: "needle" in v,
            name="Grep",
            kernel_spec=KernelSpec.contains("needle"),
        )
        stages = _grep_stages(function)
        outputs, _ = _pump_stages(stages, records)
        assert outputs == [v for v in records if "needle" in v]

    def test_below_threshold_no_slab(self, monkeypatch):
        """Small inputs never pay the slab build."""
        from repro.workloads.aol import generate_records

        records = generate_records(100)  # < SLAB_MIN_RECORDS
        built = []
        original = kernels._build_slab

        def spying(recs):
            built.append(len(recs))
            return original(recs)

        monkeypatch.setattr(kernels, "_build_slab", spying)
        outputs, _ = _pump_stages(_grep_stages(), records)
        reference, _ = _pump_stages(_grep_stages(), records, tier="reference")
        assert not built
        assert outputs == reference

    def test_recovery_chunk_path_flushes_per_chunk(self, low_slab_threshold):
        """_process_chunk (the recovery entry point) stays slab-free and
        leaves no kernel state behind between chunks."""
        from repro.workloads.aol import GREP_NEEDLE, generate_records
        from repro.dataflow.metrics import JobMetrics

        records = generate_records(200)
        function = FilterFunction(
            lambda v: GREP_NEEDLE in v,
            name="Grep",
            kernel_spec=KernelSpec.contains(GREP_NEEDLE),
        )
        pump = StreamPump(
            simulator=Simulator(seed=3),
            stages=_grep_stages(function),
            variance=RunVariance(),
            rng=random.Random(3),
        )
        metrics = JobMetrics("job")
        _, outputs = pump._process_chunk(records[:100], metrics)
        kernel = pump.stages[1].cached_kernel()
        assert kernel is not None
        from repro.dataflow.sharding import ShardedPureKernel

        inners = (
            kernel.inners if isinstance(kernel, ShardedPureKernel) else [kernel]
        )
        for inner in inners:
            assert inner._slab is None  # flushed
        assert outputs == [v for v in records[:100] if GREP_NEEDLE in v]
