"""The stateful kernel tier is observationally identical to both others.

Keyed counterpart of ``test_kernel_equivalence.py``: the stateful
StreamBench extension queries (wordcount, distinct-count, statistics) run
through the full benchmark matrix — natively on all three engines and via
Beam on Flink and Apex (the Spark runner refuses stateful DoFns, the
capability gap that shaped the paper's benchmark) — under all three pump
tiers, and every simulated observable must be **bit-identical**: run
durations, measurements, output topics, snapshots.  The Nexmark pipelines
(Q0–Q5 over *encoded* events, decode composed ahead of the query so the
plan compiler's wire fusion actually engages) get the same treatment
through a raw pump, including pane-dict insertion order for the windowed
Q5.  A chaos campaign repeats the matrix under broker faults, where any
extra or reordered request would land the fault schedule differently.

CI runs this suite on the default data plane (tier-1) and again with
``REPRO_COLUMNAR=1`` forced, so both planes are covered.
"""

from __future__ import annotations

import random

import pytest

import repro.dataflow.kernels as kernels
from repro.benchmark.config import BenchmarkConfig
from repro.benchmark.harness import StreamBenchHarness
from repro.broker.faults import FaultPlan, NodeOutage
from repro.dataflow.compiler import lower_stage
from repro.dataflow.functions import compose
from repro.engines.common.costs import RunVariance, StageCosts
from repro.engines.common.pump import StreamPump
from repro.engines.common.stages import PhysicalStage, StageKind
from repro.simtime import Simulator
from repro.workloads.nexmark import NexmarkGenerator
from repro.workloads.nexmark_queries import (
    nexmark_decode,
    q0_passthrough,
    q1_currency_conversion,
    q2_selection,
    q3_local_item_suggestion,
    q4_category_average,
    q5_hot_items,
)

SYSTEMS = ("flink", "spark", "apex")
KEYED_QUERIES = ("wordcount", "distinct-count", "statistics")
PARALLELISMS = (1, 2)

#: The three execution tiers as (vectorized, use_kernels).
TIERS = {
    "kernel": (True, True),
    "batch": (True, False),
    "reference": (False, False),
}


def _kinds_for(system: str) -> tuple[str, ...]:
    """Stateful queries run natively everywhere, via Beam except on Spark."""
    return ("native",) if system == "spark" else ("native", "beam")


def _campaign() -> tuple[list, dict, float]:
    """Run the keyed matrix at the active tier; return (runs, outputs, now)."""
    config = BenchmarkConfig(
        records=2_000,
        runs=2,
        parallelisms=PARALLELISMS,
        systems=SYSTEMS,
        queries=KEYED_QUERIES,
        kinds=("native", "beam"),
    )
    harness = StreamBenchHarness(config)
    outputs: dict[tuple, list] = {}
    original = harness._execute_once

    def capturing_execute(system, spec, kind, parallelism, rng, data_rng):
        job, measurement = original(system, spec, kind, parallelism, rng, data_rng)
        log = harness.broker.topic(config.output_topic).partition(0)
        outputs[(system, spec.name, kind, parallelism)] = log.read_values(0)
        return job, measurement

    harness._execute_once = capturing_execute
    runs = []
    for system in SYSTEMS:
        for query in KEYED_QUERIES:
            for kind in _kinds_for(system):
                for parallelism in PARALLELISMS:
                    runs.extend(harness.run_setup(system, query, kind, parallelism))
    return runs, outputs, harness.simulator.now()


@pytest.fixture(scope="module")
def campaigns():
    """One keyed-matrix campaign per tier, slab threshold lowered so the
    wordcount slab path is genuinely exercised on the kernel tier."""
    results = {}
    mp = pytest.MonkeyPatch()
    try:
        mp.setattr(kernels, "SLAB_MIN_RECORDS", 64)
        for tier, (vectorized, use_kernels) in TIERS.items():
            mp.setattr(StreamPump, "vectorized", vectorized)
            mp.setattr(StreamPump, "use_kernels", use_kernels)
            results[tier] = _campaign()
    finally:
        mp.undo()
    return results


class TestKeyedMatrixEquivalence:
    def test_run_records_bit_identical(self, campaigns):
        """Durations, measurements and counts agree for every keyed run."""
        kernel_runs = campaigns["kernel"][0]
        cells = sum(
            len(_kinds_for(system)) * len(PARALLELISMS) * len(KEYED_QUERIES)
            for system in SYSTEMS
        )
        assert len(kernel_runs) == cells * 2
        assert kernel_runs == campaigns["batch"][0]
        assert kernel_runs == campaigns["reference"][0]

    def test_output_topics_bit_identical(self, campaigns):
        """Every setup's output records match value for value, in order."""
        kernel_out = campaigns["kernel"][1]
        for other in ("batch", "reference"):
            other_out = campaigns[other][1]
            assert kernel_out.keys() == other_out.keys()
            for setup, values in kernel_out.items():
                assert values == other_out[setup], (
                    f"outputs diverge for {setup} (kernel vs {other})"
                )

    def test_simulated_clock_bit_identical(self, campaigns):
        assert (
            campaigns["kernel"][2]
            == campaigns["batch"][2]
            == campaigns["reference"][2]
        )


class TestKeyedChaosEquivalence:
    """Tier choice changes nothing for stateful queries under chaos.

    Recovery replays stateful functions from snapshots; if any tier
    snapshotted different state or issued a different request sequence,
    the fault schedule and the replayed outputs would diverge.
    """

    @pytest.fixture(scope="class")
    def chaos_reports(self):
        plan = FaultPlan(
            seed=5,
            error_rate=0.05,
            timeout_rate=0.02,
            latency_jitter=0.0005,
            outages=(NodeOutage(node_id=1, start=0.01, duration=0.05),),
        )
        config = BenchmarkConfig(
            records=1_500,
            runs=2,
            systems=("flink", "apex"),
            queries=("wordcount", "distinct-count"),
            kinds=("native", "beam"),
            parallelisms=(1,),
        )
        reports = {}
        mp = pytest.MonkeyPatch()
        try:
            mp.setattr(kernels, "SLAB_MIN_RECORDS", 64)
            for tier, (vectorized, use_kernels) in TIERS.items():
                mp.setattr(StreamPump, "vectorized", vectorized)
                mp.setattr(StreamPump, "use_kernels", use_kernels)
                harness = StreamBenchHarness(config, chaos=plan)
                reports[tier] = harness.run_matrix(parallel=False)
        finally:
            mp.undo()
        return reports

    def test_chaos_reports_equal_per_field(self, chaos_reports):
        assert chaos_reports["kernel"].runs == chaos_reports["reference"].runs
        assert chaos_reports["kernel"] == chaos_reports["batch"]
        assert chaos_reports["kernel"] == chaos_reports["reference"]

    def test_chaos_actually_bit(self, chaos_reports):
        assert chaos_reports["kernel"].sender_report.retries > 0


# ---------------------------------------------------------------------------
# Nexmark pipelines through a raw pump


NEXMARK_PIPELINES = {
    "q0": q0_passthrough,
    "q1": q1_currency_conversion,
    "q2": q2_selection,
    "q3": q3_local_item_suggestion,
    "q4": q4_category_average,
    "q5": lambda: q5_hot_items(window_seconds=3.0),
}


def _pump_nexmark(records: list, query: str, tier: str):
    """Pump encoded events through decode |> query at ``tier``.

    Returns (outputs, result fields, query snapshot, pane order) — every
    observable the kernels could corrupt.  The awkward chunk size forces
    state to survive chunk boundaries; window_seconds=3.0 makes Q5 cross
    many windows inside one chunk.
    """
    vectorized, use_kernels = TIERS[tier]
    function = NEXMARK_PIPELINES[query]()
    composed = compose([nexmark_decode(), function])
    composed.open()
    pump = StreamPump(
        simulator=Simulator(seed=3),
        stages=[
            PhysicalStage("source", StageKind.SOURCE, StageCosts(per_record_in=1e-6)),
            PhysicalStage(
                "op", StageKind.OPERATOR, StageCosts(per_weight=1e-6), function=composed
            ),
            PhysicalStage("sink", StageKind.SINK, StageCosts(per_record_out=1e-6)),
        ],
        variance=RunVariance(),
        rng=random.Random(3),
        chunk_size=977,
    )
    pump.vectorized = vectorized
    pump.use_kernels = use_kernels
    outputs: list = []
    pump.emit = outputs.extend
    result = pump.run(records)
    snapshot = function.snapshot() if hasattr(function, "snapshot") else None
    # For Q5 the pane dict's *insertion order* determines finish() order;
    # pin it explicitly so a reordered merge cannot hide behind dict
    # equality.
    pane_order = list(function.panes) if hasattr(function, "panes") else None
    composed.close()
    return (
        outputs,
        (result.records_out, result.duration, result.base_duration),
        snapshot,
        pane_order,
    )


@pytest.fixture(scope="module")
def nexmark_events() -> list:
    return NexmarkGenerator(3_000, seed=11).encoded()


class TestNexmarkPipelineEquivalence:
    @pytest.mark.parametrize("query", sorted(NEXMARK_PIPELINES))
    def test_tiers_bit_identical(self, nexmark_events, query):
        reference = _pump_nexmark(nexmark_events, query, "reference")
        for tier in ("batch", "kernel"):
            assert _pump_nexmark(nexmark_events, query, tier) == reference, (
                f"{query}: {tier} tier diverges from the reference loop"
            )

    @pytest.mark.parametrize("query", ("q3", "q4", "q5"))
    def test_wire_fusion_engages(self, query):
        """The equality above is not vacuous: decode |> q3/q4/q5 lowers to
        the fused wire kernel, not the generic decode+query chain."""
        from repro.dataflow import sharding

        composed = compose([nexmark_decode(), NEXMARK_PIPELINES[query]()])
        kernel = lower_stage(composed)
        if sharding.query_parallelism() > 1:
            expected = {
                "q3": sharding.ShardedNexmarkQ3WireKernel,
                "q4": sharding.ShardedNexmarkQ4WireKernel,
                "q5": sharding.ShardedNexmarkQ5WireKernel,
            }[query]
        else:
            expected = {
                "q3": kernels.NexmarkQ3WireKernel,
                "q4": kernels.NexmarkQ4WireKernel,
                "q5": kernels.NexmarkQ5WireKernel,
            }[query]
        assert isinstance(kernel, expected)

    def test_q5_emits_panes_at_drain(self, nexmark_events):
        """Q5 actually produces windowed panes (the comparison has teeth)."""
        outputs, _, _, pane_order = _pump_nexmark(nexmark_events, "q5", "kernel")
        assert len(outputs) > 10
        assert pane_order and len(pane_order) == len(outputs)
        auction, window, count = outputs[0]
        assert isinstance(auction, int) and count >= 1
        assert window.end - window.start == pytest.approx(3.0)
