"""Tests for repro.engines.common.progress: lag tracking + stall watchdog."""

import pytest

from repro.engines.common import LagTracker, PumpStalledError, StreamPump
from repro.engines.common.progress import ProgressGroup, merge_trackers
from repro.engines.common.costs import RunVariance, StageCosts
from repro.engines.common.recovery import RecoveringPump
from repro.engines.common.stages import PhysicalStage, StageKind
from repro.simtime import Simulator


def make_pump(sim, **kwargs):
    stage = PhysicalStage(
        name="s", kind=StageKind.SOURCE, costs=StageCosts(per_record_in=1e-6)
    )
    return StreamPump(
        simulator=sim,
        stages=[stage],
        variance=RunVariance(),
        rng=sim.random.stream("pump"),
        **kwargs,
    )


class TestLagTracker:
    def test_records_samples(self):
        tracker = LagTracker()
        tracker.observe(1.0, 10, backlog=5)
        tracker.observe(2.0, 20, backlog=3)
        assert len(tracker) == 2
        assert list(tracker.times) == [1.0, 2.0]
        assert list(tracker.offsets) == [10, 20]
        assert list(tracker.depths) == [5, 3]

    def test_depth_fn_wins_over_backlog(self):
        tracker = LagTracker(depth_fn=lambda: 42)
        tracker.observe(1.0, 1, backlog=7)
        assert tracker.final_depth == 42

    def test_summary_statistics(self):
        tracker = LagTracker()
        for now, offset, depth in [(1.0, 1, 2), (2.0, 2, 9), (3.0, 3, 4)]:
            tracker.observe(now, offset, backlog=depth)
        assert tracker.max_depth == 9
        assert tracker.final_depth == 4
        assert tracker.last_offset == 3
        assert tracker.depth_growth() == 2

    def test_empty_tracker_statistics(self):
        tracker = LagTracker()
        assert tracker.max_depth == 0
        assert tracker.final_depth == 0
        assert tracker.last_offset == -1

    def test_validation(self):
        with pytest.raises(ValueError):
            LagTracker(stall_timeout=0.0)


class TestStallWatchdog:
    def test_no_progress_past_deadline_raises(self):
        tracker = LagTracker(stall_timeout=1.0, tier="batch")
        tracker.observe(0.0, 5, backlog=3)
        tracker.observe(0.5, 5, backlog=3)  # within deadline: fine
        with pytest.raises(PumpStalledError) as excinfo:
            tracker.observe(1.6, 5, backlog=3)
        err = excinfo.value
        assert err.last_offset == 5
        assert err.queue_depth == 3
        assert err.tier == "batch"
        assert err.stalled_for == pytest.approx(1.6)
        assert err.stall_timeout == 1.0

    def test_progress_resets_the_deadline(self):
        tracker = LagTracker(stall_timeout=1.0)
        tracker.observe(0.0, 1)
        tracker.observe(5.0, 2)  # big gap, but offset advanced: no stall
        tracker.observe(5.9, 2)  # 0.9s since progress: within deadline
        with pytest.raises(PumpStalledError):
            tracker.observe(6.1, 2)  # 1.1s since progress

    def test_diagnostics_in_message(self):
        tracker = LagTracker(stall_timeout=0.5, tier="kernel")
        tracker.observe(0.0, 9, backlog=2)
        with pytest.raises(PumpStalledError, match="kernel tier.*offset 9"):
            tracker.observe(1.0, 9, backlog=2)

    def test_without_timeout_never_raises(self):
        tracker = LagTracker()
        for step in range(100):
            tracker.observe(float(step), 0, backlog=1)


class TestProgressGroup:
    """Sibling-shard liveness: skew must not trip the watchdog, silence must."""

    def _pair(self, stall_timeout=1.0):
        group = ProgressGroup()
        return [
            LagTracker(stall_timeout=stall_timeout, tier="kernel", group=group)
            for _ in range(2)
        ]

    def test_sibling_progress_defers_watchdog(self):
        starved, busy = self._pair(stall_timeout=1.0)
        starved.observe(0.0, 3)
        busy.observe(0.0, 5)
        # The starved shard receives nothing for 2.4s of simulated time —
        # well past its private deadline — but the busy sibling keeps
        # advancing, so the group is live and no watchdog fires.
        for step in range(1, 5):
            now = step * 0.6
            busy.observe(now, 5 + step)
            starved.observe(now, 3)

    def test_whole_group_silence_trips(self):
        left, right = self._pair(stall_timeout=1.0)
        left.observe(0.0, 3)
        right.observe(0.0, 5)
        left.observe(0.8, 3)
        right.observe(0.8, 5)
        with pytest.raises(PumpStalledError) as excinfo:
            left.observe(1.5, 3)
        assert excinfo.value.last_offset == 3  # the shard's own offset

    def test_deadline_measured_from_latest_group_progress(self):
        left, right = self._pair(stall_timeout=1.0)
        left.observe(0.0, 1)
        right.observe(0.7, 9)  # group progress at 0.7
        left.observe(1.5, 1)  # 1.5s own silence, 0.8s group silence: fine
        with pytest.raises(PumpStalledError):
            left.observe(1.8, 1)  # 1.1s past the group's last progress

    def test_groupless_trackers_unaffected(self):
        tracker = LagTracker(stall_timeout=1.0)
        tracker.observe(0.0, 1)
        with pytest.raises(PumpStalledError):
            tracker.observe(1.5, 1)


class TestMergeTrackers:
    def test_merged_series_sums_and_stays_monotonic(self):
        a, b = LagTracker(tier="kernel"), LagTracker(tier="kernel")
        a.observe(1.0, 10, backlog=4)
        b.observe(1.5, 7, backlog=2)
        a.observe(2.0, 12, backlog=1)
        b.observe(3.0, 9, backlog=0)
        merged = merge_trackers([a, b])
        assert list(merged.times) == [1.0, 1.5, 2.0, 3.0]
        # At each instant: sum of every shard's latest offset/depth.
        assert list(merged.offsets) == [10, 17, 19, 21]
        assert list(merged.depths) == [4, 6, 3, 1]
        assert merged.last_offset == 21
        assert merged.tier == "kernel"
        assert merged.stall_timeout is None  # observation-only

    def test_monotonic_even_with_interleaved_sampling(self):
        a, b = LagTracker(), LagTracker()
        for now, offset in [(0.1, 5), (0.9, 11), (1.7, 30)]:
            a.observe(now, offset)
        for now, offset in [(0.5, 2), (1.3, 20)]:
            b.observe(now, offset)
        merged = merge_trackers([a, b])
        assert list(merged.offsets) == sorted(merged.offsets)

    def test_ties_break_by_shard_index(self):
        a, b = LagTracker(), LagTracker()
        a.observe(1.0, 3, backlog=1)
        b.observe(1.0, 4, backlog=2)
        merged = merge_trackers([a, b])
        # Same instant: shard 0's sample lands first, pinned.
        assert list(merged.offsets) == [3, 7]
        assert list(merged.depths) == [1, 3]

    def test_empty_inputs(self):
        assert len(merge_trackers([])) == 0
        assert len(merge_trackers([LagTracker(), LagTracker()])) == 0


class TestPumpIntegration:
    def test_pump_reports_tier(self):
        sim = Simulator(seed=1)
        pump = make_pump(sim)
        assert pump.tier in ("kernel", "batch", "tuple")

    def test_pump_feeds_tracker(self):
        sim = Simulator(seed=1)
        tracker = LagTracker()
        pump = make_pump(sim, tracker=tracker, chunk_size=10)
        pump.run(list(range(20)))
        assert len(tracker) >= 2
        assert tracker.last_offset == 20
        assert tracker.final_depth == 0  # everything consumed by the end

    def test_stall_timeout_creates_private_tracker(self):
        sim = Simulator(seed=1)
        pump = make_pump(sim, stall_timeout=10.0)
        assert pump.tracker is not None
        assert pump.tracker.stall_timeout == 10.0
        assert pump.tracker.tier == pump.tier

    def test_tracker_does_not_perturb_results(self):
        def run(with_tracker):
            sim = Simulator(seed=3)
            kwargs = {"tracker": LagTracker()} if with_tracker else {}
            pump = make_pump(sim, chunk_size=7, **kwargs)
            result = pump.run(list(range(25)))
            return sim.now(), result.records_out

        assert run(True) == run(False)

    def test_recovering_pump_accepts_tracker(self):
        sim = Simulator(seed=4)
        tracker = LagTracker()
        stage = PhysicalStage(
            name="s", kind=StageKind.SOURCE, costs=StageCosts(per_record_in=1e-6)
        )
        pump = RecoveringPump(
            simulator=sim,
            stages=[stage],
            rng=sim.random.stream("pump"),
            tracker=tracker,
        )
        pump.run(list(range(10)))
        assert tracker.last_offset == 10
        assert tracker.tier in ("kernel", "batch", "tuple")
