"""Tests for the shared record pump and cost machinery."""

import random

import pytest

from repro.dataflow.functions import FilterFunction, FlatMapFunction, MapFunction
from repro.engines.common.costs import RunVariance, StageCosts
from repro.engines.common.pump import StreamPump
from repro.engines.common.stages import PhysicalStage, StageKind
from repro.simtime import Simulator
from repro.simtime.variance import LognormalNoise, StragglerModel

NO_VARIANCE = RunVariance()


def stage(kind, costs=None, function=None, name=None):
    return PhysicalStage(
        name=name or kind.value,
        kind=kind,
        costs=costs or StageCosts(),
        function=function,
    )


def simple_stages(op_function=None, source_costs=None, sink_costs=None):
    stages = [stage(StageKind.SOURCE, source_costs)]
    if op_function is not None:
        stages.append(stage(StageKind.OPERATOR, function=op_function, name="op"))
    stages.append(stage(StageKind.SINK, sink_costs))
    return stages


class TestStageCosts:
    def test_charge_formula(self):
        costs = StageCosts(
            per_record_in=1.0, per_record_out=2.0, per_weight=3.0, per_rng_draw=4.0
        )
        # 10 in * (1 + 0.5*3) + 10 * 0.2 * 4 + 5 out * 2
        assert costs.charge(10, 5, cost_weight=0.5, rng_draws=0.2) == pytest.approx(
            10 * (1 + 1.5) + 10 * 0.8 + 10
        )

    def test_plus(self):
        costs = StageCosts(per_record_in=1.0).plus(
            extra_per_record_in=0.5, extra_per_record_out=0.25
        )
        assert costs.per_record_in == 1.5
        assert costs.per_record_out == 0.25

    def test_without_entry_hop(self):
        costs = StageCosts(per_record_in=1.0, per_record_out=2.0).without_entry_hop()
        assert costs.per_record_in == 0.0
        assert costs.per_record_out == 2.0


class TestPumpCorrectness:
    def test_records_flow_through_operator(self):
        sim = Simulator(seed=1)
        outputs = []
        pump = StreamPump(
            simulator=sim,
            stages=simple_stages(FilterFunction(lambda v: v % 2 == 0)),
            variance=NO_VARIANCE,
            rng=random.Random(0),
            emit=outputs.extend,
            chunk_size=7,
        )
        result = pump.run(list(range(20)))
        assert outputs == [v for v in range(20) if v % 2 == 0]
        assert result.records_in == 20
        assert result.records_out == 10

    def test_flat_map_expansion_counted(self):
        sim = Simulator(seed=1)
        outputs = []
        pump = StreamPump(
            simulator=sim,
            stages=simple_stages(FlatMapFunction(lambda v: [v, v])),
            variance=NO_VARIANCE,
            rng=random.Random(0),
            emit=outputs.extend,
        )
        result = pump.run([1, 2, 3])
        assert result.records_out == 6
        assert outputs == [1, 1, 2, 2, 3, 3]

    def test_empty_input(self):
        sim = Simulator(seed=1)
        pump = StreamPump(
            simulator=sim,
            stages=simple_stages(),
            variance=NO_VARIANCE,
            rng=random.Random(0),
        )
        result = pump.run([])
        assert result.records_in == 0
        assert result.duration == 0.0
        assert result.first_emit_time is None

    def test_chunk_size_does_not_change_results_or_duration(self):
        def run(chunk_size):
            sim = Simulator(seed=1)
            outputs = []
            pump = StreamPump(
                simulator=sim,
                stages=simple_stages(
                    MapFunction(lambda v: v + 1),
                    source_costs=StageCosts(per_record_in=1e-6),
                    sink_costs=StageCosts(per_record_out=2e-6),
                ),
                variance=NO_VARIANCE,
                rng=random.Random(0),
                emit=outputs.extend,
                chunk_size=chunk_size,
            )
            return pump.run(list(range(1000))), outputs

        r_small, out_small = run(13)
        r_big, out_big = run(500)
        assert out_small == out_big
        assert r_small.base_duration == pytest.approx(r_big.base_duration)

    def test_requires_at_least_one_stage(self):
        with pytest.raises(ValueError):
            StreamPump(
                simulator=Simulator(seed=1),
                stages=[],
                variance=NO_VARIANCE,
                rng=random.Random(0),
            )


class TestPumpTimeAccounting:
    def test_base_duration_matches_linear_model(self):
        sim = Simulator(seed=1)
        pump = StreamPump(
            simulator=sim,
            stages=simple_stages(
                FilterFunction(lambda v: v < 50, cost_weight=2.0),
                source_costs=StageCosts(per_record_in=1e-3),
                sink_costs=StageCosts(per_record_out=2e-3),
            ),
            variance=NO_VARIANCE,
            rng=random.Random(0),
        )
        # operator costs zero here; 100 in, 50 out
        result = pump.run(list(range(100)))
        assert result.base_duration == pytest.approx(100 * 1e-3 + 50 * 2e-3)

    def test_weight_and_rng_charged(self):
        sim = Simulator(seed=1)
        op = FilterFunction(lambda v: True, cost_weight=3.0, rng_draws_per_record=2.0)
        stages = [
            stage(StageKind.SOURCE),
            PhysicalStage(
                name="op",
                kind=StageKind.OPERATOR,
                costs=StageCosts(per_weight=1e-3, per_rng_draw=1e-2),
                function=op,
            ),
            stage(StageKind.SINK),
        ]
        pump = StreamPump(
            simulator=sim, stages=stages, variance=NO_VARIANCE, rng=random.Random(0)
        )
        result = pump.run(list(range(10)))
        assert result.base_duration == pytest.approx(10 * 3 * 1e-3 + 10 * 2 * 1e-2)

    def test_simulated_clock_advances_by_duration(self):
        sim = Simulator(seed=1)
        pump = StreamPump(
            simulator=sim,
            stages=simple_stages(source_costs=StageCosts(per_record_in=1e-3)),
            variance=NO_VARIANCE,
            rng=random.Random(0),
        )
        result = pump.run(list(range(100)))
        assert sim.now() == pytest.approx(result.duration)

    def test_micro_batches_charge_overhead(self):
        def run(batch):
            sim = Simulator(seed=1)
            pump = StreamPump(
                simulator=sim,
                stages=simple_stages(),
                variance=NO_VARIANCE,
                rng=random.Random(0),
                micro_batch_records=batch,
                per_batch_overhead=0.5,
            )
            return pump.run(list(range(100))).base_duration

        assert run(10) == pytest.approx(5.0)  # 10 batches
        assert run(40) == pytest.approx(1.5)  # 3 batches

    def test_on_batch_end_called_per_batch(self):
        sim = Simulator(seed=1)
        ends = []
        pump = StreamPump(
            simulator=sim,
            stages=simple_stages(),
            variance=NO_VARIANCE,
            rng=random.Random(0),
            micro_batch_records=25,
            on_batch_end=lambda: ends.append(1),
        )
        pump.run(list(range(100)))
        assert len(ends) == 4

    def test_emit_timestamps_spread_across_run(self):
        sim = Simulator(seed=1)
        times = []
        pump = StreamPump(
            simulator=sim,
            stages=simple_stages(source_costs=StageCosts(per_record_in=1e-3)),
            variance=NO_VARIANCE,
            rng=random.Random(0),
            emit=lambda chunk: times.append(sim.now()),
            chunk_size=10,
        )
        result = pump.run(list(range(100)))
        assert len(times) == 10
        assert times == sorted(times)
        assert result.first_emit_time < result.last_emit_time


class TestPumpVariance:
    def test_noise_scales_duration(self):
        variance = RunVariance(noise=LognormalNoise(sigma=0.5))
        sim = Simulator(seed=1)
        rng = random.Random(42)
        expected_factor = variance.duration_factor(random.Random(42))
        pump = StreamPump(
            simulator=sim,
            stages=simple_stages(source_costs=StageCosts(per_record_in=1e-3)),
            variance=variance,
            rng=rng,
        )
        result = pump.run(list(range(100)))
        assert result.noise_factor == pytest.approx(expected_factor)
        assert result.duration == pytest.approx(
            result.base_duration * expected_factor + result.additive_delay
        )

    def test_straggler_adds_delay(self):
        variance = RunVariance(
            stragglers=StragglerModel(probability=1.0, scale=5.0, cap=10.0)
        )
        sim = Simulator(seed=1)
        pump = StreamPump(
            simulator=sim,
            stages=simple_stages(source_costs=StageCosts(per_record_in=1e-6)),
            variance=variance,
            rng=random.Random(3),
        )
        result = pump.run(list(range(100)))
        assert result.additive_delay >= 5.0
        assert sim.now() == pytest.approx(result.duration)

    def test_replay_variance_matches_run_draws(self):
        """The fast-repeat contract: replay_variance consumes the rng
        exactly like run() does."""
        variance = RunVariance(
            noise=LognormalNoise(sigma=0.1),
            jitter_abs_sigma=0.2,
            stragglers=StragglerModel(probability=0.5, scale=1.0),
        )

        def run_twice_with_pump():
            sim = Simulator(seed=1)
            rng = random.Random(77)
            results = []
            for _ in range(2):
                pump = StreamPump(
                    simulator=sim,
                    stages=simple_stages(source_costs=StageCosts(per_record_in=1e-4)),
                    variance=variance,
                    rng=rng,
                )
                results.append(pump.run(list(range(50))))
            return [(r.noise_factor, r.additive_delay) for r in results]

        def run_then_replay():
            sim = Simulator(seed=1)
            rng = random.Random(77)
            pump = StreamPump(
                simulator=sim,
                stages=simple_stages(source_costs=StageCosts(per_record_in=1e-4)),
                variance=variance,
                rng=rng,
            )
            first = pump.run(list(range(50)))
            factor, additive = pump.replay_variance()
            return [(first.noise_factor, first.additive_delay), (factor, additive)]

        assert run_twice_with_pump() == run_then_replay()
