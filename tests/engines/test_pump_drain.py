"""Tests for the pump's end-of-input drain (buffering functions)."""

import random

import pytest

from repro.beam.runners.util import GroupByKeyFunction
from repro.dataflow.functions import (
    FlatMapFunction,
    MapFunction,
    StreamFunction,
    compose,
)
from repro.engines.common.costs import RunVariance, StageCosts
from repro.engines.common.pump import StreamPump
from repro.engines.common.stages import PhysicalStage, StageKind
from repro.simtime import Simulator


def pump_with(function, sink_costs=None):
    sim = Simulator(seed=1)
    outputs = []
    pump = StreamPump(
        simulator=sim,
        stages=[
            PhysicalStage("src", StageKind.SOURCE, StageCosts()),
            PhysicalStage("op", StageKind.OPERATOR, StageCosts(), function=function),
            PhysicalStage(
                "snk", StageKind.SINK, sink_costs or StageCosts(per_record_out=1e-4)
            ),
        ],
        variance=RunVariance(),
        rng=random.Random(0),
        emit=outputs.extend,
    )
    return pump, outputs


class TestDrain:
    def test_grouping_flushes_at_end(self):
        pump, outputs = pump_with(GroupByKeyFunction())
        result = pump.run([("a", 1), ("b", 2), ("a", 3)])
        assert outputs == [("a", [1, 3]), ("b", [2])]
        assert result.records_out == 2

    def test_drained_records_pay_sink_costs(self):
        pump, _ = pump_with(GroupByKeyFunction())
        result = pump.run([("a", 1), ("b", 2)])
        # two drained groups through the sink at 1e-4 each
        assert result.base_duration == pytest.approx(2e-4)

    def test_stateless_functions_drain_nothing(self):
        pump, outputs = pump_with(MapFunction(lambda v: v + 1))
        result = pump.run([1, 2, 3])
        assert outputs == [2, 3, 4]
        assert result.records_out == 3

    def test_drain_cascades_through_downstream_parts(self):
        fused = compose(
            [GroupByKeyFunction(), MapFunction(lambda kv: (kv[0], sum(kv[1])))]
        )
        pump, outputs = pump_with(fused)
        pump.run([("a", 1), ("a", 2), ("b", 5)])
        assert outputs == [("a", 3), ("b", 5)]

    def test_drain_emit_timestamps_at_end(self):
        pump, _ = pump_with(GroupByKeyFunction())
        result = pump.run([("a", 1)])
        assert result.first_emit_time is not None
        assert result.first_emit_time == result.last_emit_time

    def test_empty_input_drains_nothing(self):
        pump, outputs = pump_with(GroupByKeyFunction())
        result = pump.run([])
        assert outputs == []
        assert result.records_out == 0


class TestCustomDrainFunction:
    def test_custom_finish_hook(self):
        class Batcher(StreamFunction):
            name = "Batcher"

            def __init__(self):
                self.buffer = []

            def process(self, value):
                self.buffer.append(value)
                if len(self.buffer) == 2:
                    out = [tuple(self.buffer)]
                    self.buffer = []
                    return out
                return ()

            def finish(self):
                return [tuple(self.buffer)] if self.buffer else ()

        pump, outputs = pump_with(Batcher())
        pump.run([1, 2, 3, 4, 5])
        assert outputs == [(1, 2), (3, 4), (5,)]

    def test_drain_through_following_flat_map(self):
        class Holder(StreamFunction):
            name = "Holder"

            def __init__(self):
                self.values = []

            def process(self, value):
                self.values.append(value)
                return ()

            def finish(self):
                return [self.values]

        fused = compose([Holder(), FlatMapFunction(lambda batch: batch)])
        pump, outputs = pump_with(fused)
        pump.run([1, 2, 3])
        assert outputs == [1, 2, 3]
