"""Property-based tests of the pump's conservation invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.dataflow.functions import (
    FilterFunction,
    FlatMapFunction,
    MapFunction,
    compose,
)
from repro.engines.common.costs import RunVariance, StageCosts
from repro.engines.common.pump import StreamPump
from repro.engines.common.stages import PhysicalStage, StageKind
from repro.simtime import Simulator


def make_chain(spec: list[str]):
    """Build a function chain from a compact spec list."""
    parts = []
    for kind in spec:
        if kind == "inc":
            parts.append(MapFunction(lambda v: v + 1))
        elif kind == "even":
            parts.append(FilterFunction(lambda v: v % 2 == 0))
        elif kind == "dup":
            parts.append(FlatMapFunction(lambda v: [v, v]))
        elif kind == "drop":
            parts.append(FlatMapFunction(lambda v: []))
    return compose(parts) if parts else None


def reference(values, spec):
    out = list(values)
    for kind in spec:
        if kind == "inc":
            out = [v + 1 for v in out]
        elif kind == "even":
            out = [v for v in out if v % 2 == 0]
        elif kind == "dup":
            out = [v for item in out for v in (item, item)]
        elif kind == "drop":
            out = []
    return out


chain_specs = st.lists(
    st.sampled_from(["inc", "even", "dup", "drop"]), min_size=1, max_size=5
)


class TestPumpConservation:
    @given(
        values=st.lists(st.integers(-100, 100), max_size=200),
        spec=chain_specs,
        chunk=st.integers(1, 64),
    )
    @settings(max_examples=60, deadline=None)
    def test_pump_equals_reference_semantics(self, values, spec, chunk):
        """The pump is a faithful executor: outputs equal the functional
        reference regardless of chunking."""
        function = make_chain(spec)
        sim = Simulator(seed=1)
        outputs = []
        pump = StreamPump(
            simulator=sim,
            stages=[
                PhysicalStage("src", StageKind.SOURCE, StageCosts()),
                PhysicalStage("op", StageKind.OPERATOR, StageCosts(), function=function),
                PhysicalStage("snk", StageKind.SINK, StageCosts()),
            ],
            variance=RunVariance(),
            rng=random.Random(0),
            emit=outputs.extend,
            chunk_size=chunk,
        )
        result = pump.run(values)
        assert outputs == reference(values, spec)
        assert result.records_in == len(values)
        assert result.records_out == len(outputs)

    @given(
        values=st.lists(st.integers(), max_size=150),
        spec=chain_specs,
        cost_in=st.floats(0, 1e-3),
        cost_out=st.floats(0, 1e-3),
    )
    @settings(max_examples=40, deadline=None)
    def test_duration_nonnegative_and_monotone_in_costs(
        self, values, spec, cost_in, cost_out
    ):
        def run(scale):
            sim = Simulator(seed=1)
            pump = StreamPump(
                simulator=sim,
                stages=[
                    PhysicalStage(
                        "src",
                        StageKind.SOURCE,
                        StageCosts(per_record_in=cost_in * scale),
                    ),
                    PhysicalStage(
                        "op", StageKind.OPERATOR, StageCosts(), function=make_chain(spec)
                    ),
                    PhysicalStage(
                        "snk",
                        StageKind.SINK,
                        StageCosts(per_record_out=cost_out * scale),
                    ),
                ],
                variance=RunVariance(),
                rng=random.Random(0),
            )
            return pump.run(values).base_duration

        cheap, expensive = run(1.0), run(2.0)
        assert cheap >= 0
        assert expensive >= cheap

    @given(values=st.lists(st.integers(), min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_metrics_account_every_record(self, values):
        sim = Simulator(seed=1)
        function = MapFunction(lambda v: v)
        pump = StreamPump(
            simulator=sim,
            stages=[
                PhysicalStage("src", StageKind.SOURCE, StageCosts()),
                PhysicalStage("op", StageKind.OPERATOR, StageCosts(), function=function),
                PhysicalStage("snk", StageKind.SINK, StageCosts()),
            ],
            variance=RunVariance(),
            rng=random.Random(0),
        )
        result = pump.run(values)
        assert result.metrics.operator("op").records_in == len(values)
        assert result.metrics.operator("op").records_out == len(values)
        assert result.metrics.operator("snk").records_in == len(values)
