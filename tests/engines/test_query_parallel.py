"""Partition-parallel execution is observationally identical to serial.

The shard plane (``repro.dataflow.sharding``) promises that
``REPRO_QUERY_PARALLELISM`` is a pure host-performance knob: at any P the
simulated observables — run durations, measurements, output topics, fault
schedules, snapshots — are **bit-identical** to the serial pump.  This
suite proves it where it is hardest:

* the full stateless benchmark matrix (48 cells: 3 systems × 4 queries ×
  2 kinds × 2 pipeline parallelisms, 2 runs each) at P ∈ {1, 2, 4};
* the stateful keyed matrix and the Nexmark wire-fused pipelines, where
  sharded execution hash-partitions owner state;
* a biting chaos campaign, where one extra or reordered broker request
  would land the fault schedule differently;
* checkpointing recovery with a mid-drain failure at P = 4, where the
  snapshot/replay path observes owner state between chunks.

``SHARD_MIN_CHUNK`` is lowered so the shard plane genuinely engages at
test scale — each class asserts non-vacuity explicitly.
"""

from __future__ import annotations

import random

import pytest

import repro.dataflow.kernels as kernels
from repro.benchmark.config import BenchmarkConfig
from repro.benchmark.harness import StreamBenchHarness
from repro.benchmark.queries import get_query
from repro.broker.faults import FaultPlan, NodeOutage
from repro.dataflow import sharding
from repro.dataflow.compiler import lower_stage
from repro.dataflow.functions import compose
from repro.engines.common.costs import RunVariance, StageCosts
from repro.engines.common.pump import StreamPump
from repro.engines.common.recovery import FailureInjector, RecoveringPump
from repro.engines.common.stages import PhysicalStage, StageKind
from repro.simtime import Simulator
from repro.workloads.nexmark import NexmarkGenerator
from repro.workloads.nexmark_queries import (
    nexmark_decode,
    q3_local_item_suggestion,
    q4_category_average,
    q5_hot_items,
)

SHARD_LEVELS = ("1", "2", "4")


def _at_parallelism(level: str, fn):
    """Run ``fn`` with the shard knob set to ``level`` (and engaged)."""
    mp = pytest.MonkeyPatch()
    try:
        mp.setattr(sharding, "SHARD_MIN_CHUNK", 16)
        mp.setattr(kernels, "SLAB_MIN_RECORDS", 64)
        mp.setenv(sharding.QUERY_PARALLELISM_ENV, level)
        return fn()
    finally:
        mp.undo()


class TestStatelessGridBitIdentity:
    """The full 48-cell stateless matrix, serial vs sharded."""

    @pytest.fixture(scope="class")
    def reports(self):
        def campaign():
            config = BenchmarkConfig(records=2_000, runs=2)
            return StreamBenchHarness(config).run_matrix(parallel=False)

        return {
            level: _at_parallelism(level, campaign) for level in SHARD_LEVELS
        }

    def test_grid_is_full(self, reports):
        assert len(reports["1"].runs) == 48 * 2

    def test_reports_bit_identical(self, reports):
        assert reports["2"] == reports["1"]
        assert reports["4"] == reports["1"]

    def test_sharding_engages(self):
        """Non-vacuity: the grep chain lowers to the sharded wrapper."""

        def lowered():
            function = get_query("grep").make_function(random.Random(0))
            return lower_stage(function)

        assert isinstance(
            _at_parallelism("4", lowered), sharding.ShardedPureKernel
        )
        assert not isinstance(
            _at_parallelism("1", lowered), sharding.ShardedPureKernel
        )


class TestKeyedMatrixBitIdentity:
    """Stateful queries (hash-partitioned owner state), serial vs sharded."""

    @pytest.fixture(scope="class")
    def reports(self):
        def campaign():
            config = BenchmarkConfig(
                records=2_000,
                runs=2,
                systems=("flink", "apex"),
                queries=("wordcount", "distinct-count", "statistics", "windowed"),
                kinds=("native", "beam"),
                parallelisms=(1,),
            )
            return StreamBenchHarness(config).run_matrix(parallel=False)

        return {
            level: _at_parallelism(level, campaign) for level in SHARD_LEVELS
        }

    def test_reports_bit_identical(self, reports):
        assert reports["2"] == reports["1"]
        assert reports["4"] == reports["1"]


class TestChaosBitIdentity:
    """Broker faults: any extra/reordered request would shift the schedule."""

    @pytest.fixture(scope="class")
    def reports(self):
        plan = FaultPlan(
            seed=5,
            error_rate=0.05,
            timeout_rate=0.02,
            latency_jitter=0.0005,
            outages=(NodeOutage(node_id=1, start=0.01, duration=0.05),),
        )

        def campaign():
            config = BenchmarkConfig(
                records=1_500,
                runs=2,
                systems=("flink", "apex"),
                # grep pins the PR 9 pure discipline under chaos; sample/
                # statistics/windowed pin the order-sensitive ones (the
                # keyed discipline is chaos-covered by the keyed suites).
                queries=("grep", "sample", "statistics", "windowed"),
                kinds=("native", "beam"),
                parallelisms=(1,),
            )
            harness = StreamBenchHarness(config, chaos=plan)
            return harness.run_matrix(parallel=False)

        return {
            level: _at_parallelism(level, campaign) for level in SHARD_LEVELS
        }

    def test_chaos_reports_bit_identical(self, reports):
        assert reports["2"] == reports["1"]
        assert reports["4"] == reports["1"]

    def test_chaos_actually_bit(self, reports):
        assert reports["1"].sender_report.retries > 0


NEXMARK_PIPELINES = {
    "q3": q3_local_item_suggestion,
    "q4": q4_category_average,
    "q5": lambda: q5_hot_items(window_seconds=3.0),
}


def _pump_nexmark(records: list, query: str) -> tuple:
    """Pump encoded events through decode |> query at the active knob.

    chunk_size 977 exceeds ``SHARD_MIN_CHUNK`` so the sharded wire
    kernels engage without lowering the threshold.
    """
    function = NEXMARK_PIPELINES[query]()
    composed = compose([nexmark_decode(), function])
    composed.open()
    pump = StreamPump(
        simulator=Simulator(seed=3),
        stages=[
            PhysicalStage("source", StageKind.SOURCE, StageCosts(per_record_in=1e-6)),
            PhysicalStage(
                "op", StageKind.OPERATOR, StageCosts(per_weight=1e-6), function=composed
            ),
            PhysicalStage("sink", StageKind.SINK, StageCosts(per_record_out=1e-6)),
        ],
        variance=RunVariance(),
        rng=random.Random(3),
        chunk_size=977,
    )
    outputs: list = []
    pump.emit = outputs.extend
    result = pump.run(records)
    snapshot = function.snapshot() if hasattr(function, "snapshot") else None
    pane_order = list(function.panes) if hasattr(function, "panes") else None
    composed.close()
    return (
        outputs,
        (result.records_out, result.duration, result.base_duration),
        snapshot,
        pane_order,
    )


class TestNexmarkBitIdentity:
    @pytest.fixture(scope="class")
    def events(self):
        return NexmarkGenerator(3_000, seed=11).encoded()

    @pytest.mark.parametrize("query", sorted(NEXMARK_PIPELINES))
    def test_wire_pipelines_bit_identical(self, events, query, monkeypatch):
        monkeypatch.setenv(sharding.QUERY_PARALLELISM_ENV, "1")
        serial = _pump_nexmark(events, query)
        for level in ("2", "4"):
            monkeypatch.setenv(sharding.QUERY_PARALLELISM_ENV, level)
            assert _pump_nexmark(events, query) == serial, (
                f"{query}: P={level} diverges from serial"
            )

    def test_sharded_wire_kernel_engages(self, monkeypatch):
        monkeypatch.setenv(sharding.QUERY_PARALLELISM_ENV, "4")
        composed = compose([nexmark_decode(), q4_category_average()])
        assert isinstance(
            lower_stage(composed), sharding.ShardedNexmarkQ4WireKernel
        )


def _lines(count: int, seed: int = 7) -> list[str]:
    rng = random.Random(seed)
    words = ["alpha", "beta", "gamma", "delta", "web", "search"]
    return [
        "\t".join(
            (
                str(rng.randrange(100)),
                " ".join(rng.choice(words) for _ in range(3)),
                # Fixed-width AOL QueryTime so the windowed query parses.
                f"2006-03-{rng.randrange(1, 29):02d} "
                f"{rng.randrange(24):02d}:{rng.randrange(60):02d}"
                f":{rng.randrange(60):02d}",
            )
        )
        for _ in range(count)
    ]


RECOVERY_QUERIES = ("wordcount", "sample", "statistics", "windowed")


class TestRecoveryBitIdentity:
    """Snapshot/replay observes owner state mid-drain between chunks."""

    def _run(self, query: str, failure: FailureInjector | None) -> tuple:
        lines = _lines(3_000)
        function = get_query(query).make_function(random.Random(3))
        stages = [
            PhysicalStage(
                "src", StageKind.SOURCE, StageCosts(per_record_in=1e-5)
            ),
            PhysicalStage("op", StageKind.OPERATOR, StageCosts(), function=function),
            PhysicalStage(
                "snk", StageKind.SINK, StageCosts(per_record_out=1e-5)
            ),
        ]
        outputs: list = []
        pump = RecoveringPump(
            simulator=Simulator(seed=5),
            stages=stages,
            rng=random.Random(1),
            emit=outputs.extend,
            checkpoint_interval_records=600,
            exactly_once=True,
            failure=failure,
        )
        report = pump.run(lines)
        state = {
            name: (dict(value), list(value))
            for name, value in vars(function).items()
            if isinstance(value, dict)
        }
        scalars = {
            name: value
            for name, value in vars(function).items()
            if isinstance(value, (int, float))
        }
        return report, outputs, state, scalars

    @pytest.mark.parametrize("query", RECOVERY_QUERIES)
    @pytest.mark.parametrize("fraction", (0.35, 0.7))
    def test_mid_drain_failure_bit_identical(self, query, fraction, monkeypatch):
        monkeypatch.setenv(sharding.QUERY_PARALLELISM_ENV, "1")
        serial = self._run(query, FailureInjector(at_fraction=fraction))
        monkeypatch.setenv(sharding.QUERY_PARALLELISM_ENV, "4")
        sharded = self._run(query, FailureInjector(at_fraction=fraction))
        assert sharded == serial
        assert serial[0].failures == 1

    @pytest.mark.parametrize("query", RECOVERY_QUERIES)
    def test_clean_run_bit_identical(self, query, monkeypatch):
        monkeypatch.setenv(sharding.QUERY_PARALLELISM_ENV, "1")
        serial = self._run(query, None)
        monkeypatch.setenv(sharding.QUERY_PARALLELISM_ENV, "4")
        assert self._run(query, None) == serial


ORDER_SENSITIVE_QUERIES = ("sample", "statistics", "windowed")


class TestCapacityProbesBothPlanes:
    """Capacity probes for the newly-sharded queries, row and columnar.

    A :class:`~repro.benchmark.capacity.ProbeResult` folds every simulated
    observable of one open-loop drain — elapsed time, queue behaviour,
    latency percentiles, per-shard costs — so probe equality across the
    *host* shard knob is the end-to-end statement that the ShardedPump +
    order-sensitive kernels change nothing but host wall-clock, on either
    data plane.  (The probe's ``parallelism`` argument is *simulated*
    parallelism — a different pipeline, deliberately not compared here.)
    """

    @pytest.mark.parametrize("query", ORDER_SENSITIVE_QUERIES)
    @pytest.mark.parametrize("columnar", (False, True), ids=("rows", "columns"))
    def test_probe_bit_identical_across_host_knob(self, query, columnar):
        from repro.benchmark.capacity import run_probe
        from repro.benchmark.config import BenchmarkConfig, CapacitySettings

        config = BenchmarkConfig(
            records=1_200,
            capacity=CapacitySettings(records=1_200),
        )

        def probe():
            return run_probe(
                config,
                "flink",
                query,
                rate=40_000.0,
                columnar=columnar,
                parallelism=2,  # the pump pool engages (simulated P)
            )

        results = {level: _at_parallelism(level, probe) for level in SHARD_LEVELS}
        assert results["2"] == results["1"]
        assert results["4"] == results["1"]
        assert len(results["1"].shard_costs) == 2  # the pool really ran
