"""Tests for checkpointing, failure injection and exactly-once recovery.

Backs Table I's "Exactly-once" row: each input tuple is processed exactly
once even across failures — and the guarantee is *observable*: with the
transactional sink disabled the same failure produces duplicates.
"""

import random

import pytest

from repro.engines.common.costs import StageCosts
from repro.engines.common.recovery import (
    CheckpointingConfig,
    FailureInjector,
    RecoveringPump,
)
from repro.engines.common.stages import PhysicalStage, StageKind
from repro.engines.flink import CollectSink, FlinkCluster, StreamExecutionEnvironment
from repro.engines.flink.datastream import KeyedReduceFunction
from repro.dataflow.functions import FilterFunction
from repro.simtime import Simulator


def stages_for(function=None):
    stages = [
        PhysicalStage("src", StageKind.SOURCE, StageCosts(per_record_in=1e-5))
    ]
    if function is not None:
        stages.append(
            PhysicalStage("op", StageKind.OPERATOR, StageCosts(), function=function)
        )
    stages.append(PhysicalStage("snk", StageKind.SINK, StageCosts(per_record_out=1e-5)))
    return stages


def run_pump(records, exactly_once=True, failure=None, function=None, interval=100):
    sim = Simulator(seed=5)
    outputs = []
    pump = RecoveringPump(
        simulator=sim,
        stages=stages_for(function),
        rng=random.Random(1),
        emit=outputs.extend,
        checkpoint_interval_records=interval,
        exactly_once=exactly_once,
        failure=failure,
    )
    report = pump.run(records)
    return report, outputs


class TestFailureInjector:
    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            FailureInjector(at_fraction=1.5)

    def test_delay_validation(self):
        with pytest.raises(ValueError):
            FailureInjector(at_fraction=0.5, recovery_delay=-1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CheckpointingConfig(interval_records=0)


class TestNoFailure:
    def test_outputs_identical_to_plain_run(self):
        records = list(range(1000))
        report, outputs = run_pump(records)
        assert outputs == records
        assert report.failures == 0
        assert report.result.records_out == 1000

    def test_checkpoints_taken_periodically(self):
        report, _ = run_pump(list(range(1000)), interval=100)
        # initial + one per interval
        assert report.checkpoints_taken == 11

    def test_checkpointing_costs_time(self):
        plain_sim = Simulator(seed=5)
        from repro.engines.common.pump import StreamPump
        from repro.engines.common.costs import RunVariance

        plain = StreamPump(
            simulator=plain_sim,
            stages=stages_for(),
            variance=RunVariance(),
            rng=random.Random(1),
        )
        plain_result = plain.run(list(range(1000)))
        report, _ = run_pump(list(range(1000)), interval=100)
        # checkpoint snapshots add overhead beyond the plain run
        assert report.result.duration >= plain_result.duration


class TestExactlyOnce:
    def test_failure_does_not_change_outputs(self):
        records = list(range(1000))
        clean, clean_out = run_pump(records)
        failed, failed_out = run_pump(
            records, failure=FailureInjector(at_fraction=0.55, recovery_delay=0.5)
        )
        assert failed.failures == 1
        assert failed_out == clean_out
        assert failed.result.records_out == clean.result.records_out

    def test_failure_at_various_points(self):
        records = list(range(500))
        for fraction in (0.0, 0.1, 0.5, 0.9, 0.999):
            report, outputs = run_pump(
                records,
                failure=FailureInjector(at_fraction=fraction, recovery_delay=0.1),
                interval=64,
            )
            assert outputs == records, f"lost/duplicated records at {fraction}"
            assert report.failures == 1

    def test_recovery_takes_longer_than_clean_run(self):
        records = list(range(2000))
        clean, _ = run_pump(records)
        failed, _ = run_pump(
            records, failure=FailureInjector(at_fraction=0.93, recovery_delay=1.0)
        )
        assert failed.result.duration > clean.result.duration
        assert failed.records_reprocessed > 0

    def test_stateful_function_state_correct_after_recovery(self):
        """The running counts must not double-count replayed records."""
        records = ["a", "b", "a", "a", "b"] * 100
        counter = KeyedReduceFunction(
            key_selector=lambda v: v,
            reducer=lambda acc, one: acc + one,
            value_selector=lambda v: 1,
        )
        report, outputs = run_pump(
            records,
            function=counter,
            failure=FailureInjector(at_fraction=0.6, recovery_delay=0.2),
            interval=64,
        )
        clean_counter = KeyedReduceFunction(
            key_selector=lambda v: v,
            reducer=lambda acc, one: acc + one,
            value_selector=lambda v: 1,
        )
        _, clean_outputs = run_pump(records, function=clean_counter)
        assert outputs == clean_outputs
        assert counter.state == {"a": 300, "b": 200}

    def test_filter_function_with_failure(self):
        records = list(range(1000))
        report, outputs = run_pump(
            records,
            function=FilterFunction(lambda v: v % 7 == 0),
            failure=FailureInjector(at_fraction=0.33),
            interval=50,
        )
        assert outputs == [v for v in records if v % 7 == 0]


class TestMultipleFailures:
    def test_at_fractions_validation(self):
        with pytest.raises(ValueError):
            FailureInjector(at_fractions=(0.2, 1.5))

    def test_fractions_union_is_sorted_and_deduped(self):
        injector = FailureInjector(at_fraction=0.5, at_fractions=(0.9, 0.2, 0.5))
        assert injector.fractions() == (0.2, 0.5, 0.9)

    def test_multiple_failures_still_exactly_once(self):
        records = list(range(1000))
        clean, clean_out = run_pump(records)
        failed, failed_out = run_pump(
            records,
            failure=FailureInjector(
                at_fractions=(0.2, 0.5, 0.8), recovery_delay=0.25
            ),
        )
        assert failed.failures == 3
        assert failed_out == clean_out
        assert failed.result.duration > clean.result.duration

    def test_multiple_failures_at_least_once_duplicates(self):
        records = list(range(1000))
        report, outputs = run_pump(
            records,
            exactly_once=False,
            failure=FailureInjector(at_fractions=(0.35, 0.65), recovery_delay=0.1),
            interval=100,
        )
        assert report.failures == 2
        assert report.duplicates_possible
        assert len(outputs) > len(records)
        assert set(outputs) == set(records)

    def test_single_fraction_behaviour_unchanged(self):
        records = list(range(500))
        via_scalar, out_scalar = run_pump(
            records, failure=FailureInjector(at_fraction=0.4, recovery_delay=0.2)
        )
        via_tuple, out_tuple = run_pump(
            records, failure=FailureInjector(at_fractions=(0.4,), recovery_delay=0.2)
        )
        assert out_scalar == out_tuple
        assert via_scalar.result.duration == pytest.approx(via_tuple.result.duration)
        assert via_scalar.failures == via_tuple.failures == 1


class TestAtLeastOnce:
    def test_failure_produces_duplicates(self):
        records = list(range(1000))
        report, outputs = run_pump(
            records,
            exactly_once=False,
            failure=FailureInjector(at_fraction=0.55, recovery_delay=0.1),
            interval=100,
        )
        assert report.duplicates_possible
        assert len(outputs) > len(records)
        # every record still present at least once
        assert set(outputs) == set(records)

    def test_no_failure_no_duplicates(self):
        records = list(range(500))
        report, outputs = run_pump(records, exactly_once=False)
        assert outputs == records
        assert not report.duplicates_possible


class TestEngineIntegration:
    def test_flink_exactly_once_end_to_end(self):
        sim = Simulator(seed=6)
        cluster = FlinkCluster(sim)
        records = [f"r{i}" for i in range(3000)]

        def run(failure):
            env = StreamExecutionEnvironment(cluster)
            env.enable_checkpointing(interval_records=500)
            sink = CollectSink()
            env.from_collection(records).filter(lambda v: v.endswith("0")).add_sink(sink)
            result = env.execute("ck", failure=failure)
            return result, sink.values

        clean_result, clean_values = run(None)
        failed_result, failed_values = run(
            FailureInjector(at_fraction=0.5, recovery_delay=0.5)
        )
        assert failed_values == clean_values
        assert failed_result.recovery.failures == 1
        assert failed_result.duration > clean_result.duration

    def test_flink_at_least_once_duplicates(self):
        sim = Simulator(seed=6)
        cluster = FlinkCluster(sim)
        env = StreamExecutionEnvironment(cluster)
        env.enable_checkpointing(interval_records=200, exactly_once=False)
        sink = CollectSink()
        env.from_collection(list(range(1000))).add_sink(sink)
        result = env.execute("alo", failure=FailureInjector(at_fraction=0.5))
        assert result.recovery.duplicates_possible
        assert len(sink.values) > 1000

    def test_spark_checkpoint_recovery(self):
        from repro.engines.spark import (
            SparkCluster,
            SparkConf,
            SparkContext,
            StreamingContext,
        )

        sim = Simulator(seed=6)
        cluster = SparkCluster(sim)
        records = list(range(2000))

        def run(failure):
            sc = SparkContext(SparkConf(), cluster)
            ssc = StreamingContext(sc, records_per_batch=250)
            ssc.checkpoint()
            bucket = []
            ssc.queue_stream(records).map(lambda v: v * 2).collect_into(bucket)
            result = ssc.run("ck", failure=failure)
            sc.stop()
            return result, bucket

        _, clean = run(None)
        failed_result, failed = run(FailureInjector(at_fraction=0.4))
        assert failed == clean
        assert failed_result.recovery.failures == 1

    def test_apex_checkpoint_recovery(self):
        from repro.engines.apex import ApexLauncher, CollectOutputOperator, DAG
        from repro.engines.apex.operators import (
            CollectionInputOperator,
            FilterOperator,
        )
        from repro.yarn import YarnCluster

        sim = Simulator(seed=6)
        records = list(range(2000))

        def run(failure):
            dag = DAG("ck")
            src = dag.add_operator("in", CollectionInputOperator(records))
            flt = dag.add_operator("f", FilterOperator(lambda v: v % 3 == 0))
            out = dag.add_operator("out", CollectOutputOperator())
            dag.add_stream("a", src.output, flt.input)
            dag.add_stream("b", flt.output, out.input)
            result = ApexLauncher(YarnCluster(sim)).launch(
                dag,
                checkpointing=CheckpointingConfig(interval_records=300),
                failure=failure,
            )
            return result, out.values

        _, clean = run(None)
        failed_result, failed = run(FailureInjector(at_fraction=0.7))
        assert failed == clean
        assert failed_result.recovery.failures == 1
