"""Property-based tests of the exactly-once guarantee."""

import random

from hypothesis import given, settings, strategies as st

from repro.engines.common.costs import StageCosts
from repro.engines.common.recovery import FailureInjector, RecoveringPump
from repro.engines.common.stages import PhysicalStage, StageKind
from repro.engines.flink.datastream import KeyedReduceFunction
from repro.simtime import Simulator


def run(records, exactly_once, failure, interval, function=None):
    stages = [PhysicalStage("src", StageKind.SOURCE, StageCosts(per_record_in=1e-6))]
    if function is not None:
        stages.append(
            PhysicalStage("op", StageKind.OPERATOR, StageCosts(), function=function)
        )
    stages.append(PhysicalStage("snk", StageKind.SINK, StageCosts()))
    outputs = []
    pump = RecoveringPump(
        simulator=Simulator(seed=1),
        stages=stages,
        rng=random.Random(0),
        emit=outputs.extend,
        checkpoint_interval_records=interval,
        exactly_once=exactly_once,
        failure=failure,
    )
    report = pump.run(records)
    return report, outputs


class TestExactlyOnceProperty:
    @given(
        n=st.integers(1, 500),
        fraction=st.floats(0.0, 1.0),
        interval=st.integers(1, 100),
        delay=st.floats(0.0, 2.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_outputs_invariant_under_any_failure_point(
        self, n, fraction, interval, delay
    ):
        records = list(range(n))
        _, outputs = run(
            records,
            exactly_once=True,
            failure=FailureInjector(at_fraction=fraction, recovery_delay=delay),
            interval=interval,
        )
        assert outputs == records

    @given(
        n=st.integers(1, 400),
        fraction=st.floats(0.0, 1.0),
        interval=st.integers(1, 64),
    )
    @settings(max_examples=40, deadline=None)
    def test_at_least_once_never_loses_records(self, n, fraction, interval):
        records = list(range(n))
        _, outputs = run(
            records,
            exactly_once=False,
            failure=FailureInjector(at_fraction=fraction, recovery_delay=0.1),
            interval=interval,
        )
        assert set(outputs) == set(records)
        assert len(outputs) >= len(records)

    @given(
        keys=st.lists(st.sampled_from("abcde"), min_size=1, max_size=300),
        fraction=st.floats(0.0, 1.0),
        interval=st.integers(1, 50),
    )
    @settings(max_examples=40, deadline=None)
    def test_stateful_counts_exact_under_failure(self, keys, fraction, interval):
        counter = KeyedReduceFunction(
            key_selector=lambda v: v,
            reducer=lambda acc, one: acc + one,
            value_selector=lambda v: 1,
        )
        _, outputs = run(
            keys,
            exactly_once=True,
            failure=FailureInjector(at_fraction=fraction, recovery_delay=0.0),
            interval=interval,
            function=counter,
        )
        expected_final = {key: keys.count(key) for key in set(keys)}
        assert counter.state == expected_final
        # the emitted running counts are exactly the failure-free sequence
        clean_counter = KeyedReduceFunction(
            key_selector=lambda v: v,
            reducer=lambda acc, one: acc + one,
            value_selector=lambda v: 1,
        )
        clean_expected = [next(iter(clean_counter.process(k))) for k in keys]
        assert outputs == clean_expected
