"""Tests for the Spark-Streaming-like engine."""

import pytest

from repro.engines.spark import (
    KafkaUtils,
    SparkCluster,
    SparkConf,
    SparkContext,
    StreamingContext,
)
from repro.engines.spark.errors import (
    NoExecutorsError,
    SparkError,
    StreamingContextStateError,
)
from repro.simtime import Simulator


@pytest.fixture
def cluster(sim):
    return SparkCluster(sim)


def make_ssc(cluster, parallelism=1, records_per_batch=None):
    conf = SparkConf().set("spark.default.parallelism", str(parallelism))
    sc = SparkContext(conf, cluster)
    return StreamingContext(sc, records_per_batch=records_per_batch)


class TestSparkConf:
    def test_set_get(self):
        conf = SparkConf().set("a", "1")
        assert conf.get("a") == "1"
        assert conf.get("missing") is None
        assert conf.get("missing", "d") == "d"

    def test_get_int(self):
        conf = SparkConf().set("spark.default.parallelism", "4")
        assert conf.get_int("spark.default.parallelism", 1) == 4
        assert conf.get_int("missing", 7) == 7

    def test_chaining(self):
        conf = SparkConf().set("a", "1").set("b", "2")
        assert conf.entries() == {"a": "1", "b": "2"}


class TestRdd:
    def test_parallelize_partitions(self, cluster):
        sc = SparkContext(SparkConf().set("spark.default.parallelism", "3"), cluster)
        rdd = sc.parallelize(list(range(10)))
        assert rdd.num_partitions == 3
        assert sorted(rdd.collect()) == list(range(10))

    def test_map_filter_lazy_then_collect(self, cluster):
        sc = SparkContext(SparkConf(), cluster)
        rdd = sc.parallelize(list(range(10))).map(lambda v: v * 2).filter(lambda v: v > 10)
        assert sorted(rdd.collect()) == [12, 14, 16, 18]

    def test_flat_map(self, cluster):
        sc = SparkContext(SparkConf(), cluster)
        rdd = sc.parallelize(["a b", "c"]).flat_map(str.split)
        assert sorted(rdd.collect()) == ["a", "b", "c"]

    def test_count(self, cluster):
        sc = SparkContext(SparkConf(), cluster)
        assert sc.parallelize(list(range(7))).count() == 7

    def test_take(self, cluster):
        sc = SparkContext(SparkConf(), cluster)
        assert sc.parallelize([5, 6, 7, 8], num_slices=1).take(2) == [5, 6]

    def test_reduce(self, cluster):
        sc = SparkContext(SparkConf(), cluster)
        assert sc.parallelize([1, 2, 3, 4]).reduce(lambda a, b: a + b) == 10

    def test_reduce_empty_raises(self, cluster):
        sc = SparkContext(SparkConf(), cluster)
        with pytest.raises(ValueError):
            sc.parallelize([]).reduce(lambda a, b: a + b)

    def test_rdd_immutable_lineage(self, cluster):
        sc = SparkContext(SparkConf(), cluster)
        base = sc.parallelize([1, 2, 3], num_slices=1)
        mapped = base.map(lambda v: v * 2)
        assert base.collect() == [1, 2, 3]
        assert mapped.collect() == [2, 4, 6]

    def test_glom_exposes_partitions(self, cluster):
        sc = SparkContext(SparkConf().set("spark.default.parallelism", "2"), cluster)
        parts = sc.parallelize([0, 1, 2, 3]).glom()
        assert len(parts) == 2


class TestExecutors:
    def test_context_acquires_executor_per_worker(self, cluster):
        sc = SparkContext(SparkConf(), cluster)
        assert len(sc.executors) == 2
        assert all(w.executors for w in cluster.workers)

    def test_stop_releases(self, cluster):
        sc = SparkContext(SparkConf(), cluster)
        sc.stop()
        assert all(not w.executors for w in cluster.workers)

    def test_applications_do_not_share_executors(self, cluster):
        sc1 = SparkContext(SparkConf(), cluster, app_name="a")
        sc2 = SparkContext(SparkConf(), cluster, app_name="b")
        apps = {e.app_id for e in sc1.executors} | {e.app_id for e in sc2.executors}
        assert len(apps) == 2

    def test_exhausted_cores_raise(self, sim):
        small = SparkCluster(sim, cores_per_worker=1)
        SparkContext(SparkConf(), small)
        with pytest.raises(NoExecutorsError):
            SparkContext(SparkConf(), small)

    def test_invalid_parallelism(self, cluster):
        conf = SparkConf().set("spark.default.parallelism", "0")
        with pytest.raises(ValueError):
            SparkContext(conf, cluster)


class TestStreaming:
    def test_queue_stream_pipeline(self, cluster):
        ssc = make_ssc(cluster)
        bucket = []
        ssc.queue_stream(list(range(10))).filter(lambda v: v % 2 == 0).map(
            lambda v: v * 10
        ).collect_into(bucket)
        result = ssc.run("evens")
        assert bucket == [0, 20, 40, 60, 80]
        assert result.engine == "spark"

    def test_kafka_roundtrip(self, sim, broker, admin, ingested_lines):
        admin.create_topic("out")
        ssc = make_ssc(SparkCluster(sim))
        stream = KafkaUtils.create_direct_stream(ssc, broker, "in")
        stream.filter(lambda line: "test" in line).write_to_kafka(broker, "out")
        result = ssc.run("grep")
        expected = [line for line in ingested_lines if "test" in line]
        assert broker.topic("out").partition(0).read_values(0) == expected
        assert result.records_out == len(expected)

    def test_update_state_by_key(self, cluster):
        ssc = make_ssc(cluster)
        bucket = []
        (
            ssc.queue_stream(["a", "b", "a"])
            .map(lambda w: (w, 1))
            .update_state_by_key(lambda value, state: (state or 0) + value)
            .collect_into(bucket)
        )
        ssc.run("wordcount")
        assert bucket == [("a", 1), ("b", 1), ("a", 2)]

    def test_foreach_rdd_gets_one_rdd_per_batch(self, cluster):
        ssc = make_ssc(cluster, records_per_batch=25)
        batches = []
        ssc.queue_stream(list(range(100))).foreach_rdd(
            lambda rdd: batches.append(rdd.count())
        )
        ssc.run("batches")
        assert batches == [25, 25, 25, 25]

    def test_more_batches_cost_more(self, sim):
        def run(records_per_batch):
            local = Simulator(seed=4)
            ssc = make_ssc(SparkCluster(local), records_per_batch=records_per_batch)
            bucket = []
            ssc.queue_stream(list(range(1000))).collect_into(bucket)
            return ssc.run("j").base_duration

        assert run(100) > run(1000)

    def test_run_without_sink_raises(self, cluster):
        ssc = make_ssc(cluster)
        ssc.queue_stream([1])
        with pytest.raises(SparkError):
            ssc.run()

    def test_run_without_source_raises(self, cluster):
        ssc = make_ssc(cluster)
        with pytest.raises(SparkError):
            ssc.run()

    def test_double_sink_rejected(self, cluster):
        ssc = make_ssc(cluster)
        stream = ssc.queue_stream([1])
        stream.collect_into([])
        with pytest.raises(SparkError):
            stream.collect_into([])

    def test_rerun_after_stop_raises(self, cluster):
        ssc = make_ssc(cluster)
        ssc.queue_stream([1]).collect_into([])
        ssc.run()
        with pytest.raises(StreamingContextStateError):
            ssc.run()

    def test_invalid_records_per_batch(self, cluster):
        with pytest.raises(ValueError):
            make_ssc(cluster, records_per_batch=0)
