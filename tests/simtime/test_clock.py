"""Tests for repro.simtime.clock."""

import pytest

from repro.simtime.clock import ClockError, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_custom_start(self):
        assert SimClock(start=5.0).now() == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1.0)

    def test_advance_returns_new_time(self):
        clock = SimClock()
        assert clock.advance(1.5) == 1.5
        assert clock.now() == 1.5

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.0)
        clock.advance(2.0)
        assert clock.now() == pytest.approx(3.0)

    def test_advance_zero_is_noop(self):
        clock = SimClock(start=2.0)
        clock.advance(0.0)
        assert clock.now() == 2.0

    def test_advance_negative_rejected(self):
        clock = SimClock()
        with pytest.raises(ClockError):
            clock.advance(-0.1)

    def test_advance_to_absolute(self):
        clock = SimClock()
        clock.advance_to(7.25)
        assert clock.now() == 7.25

    def test_advance_to_now_is_noop(self):
        clock = SimClock(start=3.0)
        clock.advance_to(3.0)
        assert clock.now() == 3.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(start=3.0)
        with pytest.raises(ClockError):
            clock.advance_to(2.999)

    def test_repr_mentions_time(self):
        assert "1.5" in repr(SimClock(start=1.5))
