"""Tests for repro.simtime.events."""

import pytest

from repro.simtime.events import EventQueue


class TestEventQueue:
    def test_empty_queue_is_falsy(self):
        queue = EventQueue()
        assert not queue
        assert len(queue) == 0
        assert queue.peek() is None

    def test_pop_from_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_pop_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, lambda: "c", name="c")
        queue.push(1.0, lambda: "a", name="a")
        queue.push(2.0, lambda: "b", name="b")
        assert [queue.pop().name for _ in range(3)] == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None, name="first")
        queue.push(1.0, lambda: None, name="second")
        queue.push(1.0, lambda: None, name="third")
        assert [queue.pop().name for _ in range(3)] == ["first", "second", "third"]

    def test_peek_does_not_remove(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None, name="only")
        assert queue.peek().name == "only"
        assert len(queue) == 1

    def test_cancel_skips_event(self):
        queue = EventQueue()
        keep = queue.push(1.0, lambda: None, name="keep")
        drop = queue.push(0.5, lambda: None, name="drop")
        queue.cancel(drop)
        assert len(queue) == 1
        assert queue.pop().name == "keep"

    def test_cancel_is_idempotent(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.cancel(event)
        queue.cancel(event)
        assert len(queue) == 0

    def test_fire_runs_action(self):
        queue = EventQueue()
        queue.push(1.0, lambda: 42)
        assert queue.pop().fire() == 42

    def test_clear(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.clear()
        assert not queue

    def test_event_ordering_operator(self):
        queue = EventQueue()
        early = queue.push(1.0, lambda: None)
        late = queue.push(2.0, lambda: None)
        assert early < late
