"""Tests for repro.simtime.randomness."""

from hypothesis import given, strategies as st

from repro.simtime.randomness import RandomSource


class TestRandomSource:
    def test_same_seed_same_stream(self):
        assert (
            RandomSource(1).stream("a").random()
            == RandomSource(1).stream("a").random()
        )

    def test_different_names_differ(self):
        root = RandomSource(1)
        assert root.stream("a").random() != root.stream("b").random()

    def test_different_seeds_differ(self):
        assert (
            RandomSource(1).stream("a").random()
            != RandomSource(2).stream("a").random()
        )

    def test_derive_scopes_names(self):
        root = RandomSource(7)
        child = root.derive("child")
        # child's "x" equals root's "child/x"
        assert child.stream("x").random() == root.stream("child/x").random()

    def test_derive_isolates_between_children(self):
        root = RandomSource(7)
        assert (
            root.derive("a").stream("x").random()
            != root.derive("b").stream("x").random()
        )

    def test_stream_restarts_from_same_state(self):
        root = RandomSource(3)
        first = root.stream("s")
        first.random()
        second = root.stream("s")
        assert second.random() == RandomSource(3).stream("s").random()

    def test_repr(self):
        assert "seed=5" in repr(RandomSource(5))

    @given(st.integers(), st.text(min_size=1, max_size=20))
    def test_streams_deterministic_property(self, seed, name):
        a = RandomSource(seed).stream(name).random()
        b = RandomSource(seed).stream(name).random()
        assert a == b

    @given(st.integers(min_value=0, max_value=10_000))
    def test_adjacent_seeds_do_not_collide(self, seed):
        a = RandomSource(seed).stream("s").random()
        b = RandomSource(seed + 1).stream("s").random()
        assert a != b
