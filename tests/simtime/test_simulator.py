"""Tests for repro.simtime.simulator."""

import pytest

from repro.simtime import Simulator


class TestSimulator:
    def test_charge_advances_clock(self):
        sim = Simulator()
        sim.charge(2.5)
        assert sim.now() == 2.5

    def test_schedule_fires_in_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        count = sim.run()
        assert fired == ["a", "b"]
        assert count == 2
        assert sim.now() == 2.0

    def test_schedule_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.charge(1.0)
        sim.schedule_at(4.0, lambda: None)
        sim.run()
        assert sim.now() == 4.0

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.charge(5.0)
        with pytest.raises(ValueError):
            sim.schedule_at(4.0, lambda: None)

    def test_step_returns_none_when_empty(self):
        assert Simulator().step() is None

    def test_step_fires_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        event = sim.step()
        assert event is not None
        assert fired == [1]

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.schedule(10.0, lambda: fired.append("late"))
        sim.run(until=5.0)
        assert fired == ["early"]
        assert sim.now() == 5.0
        sim.run()
        assert fired == ["early", "late"]

    def test_run_until_advances_clock_with_no_events(self):
        sim = Simulator()
        sim.run(until=3.0)
        assert sim.now() == 3.0

    def test_cancel_scheduled_event(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        sim.cancel(event)
        sim.run()
        assert fired == []

    def test_events_scheduling_events(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append("outer")
            sim.schedule(1.0, lambda: fired.append("inner"))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == ["outer", "inner"]
        assert sim.now() == 2.0

    def test_runaway_guard(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(0.0, reschedule)

        sim.schedule(0.0, reschedule)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)

    def test_seeded_random_is_deterministic(self):
        a = Simulator(seed=99).random.stream("x").random()
        b = Simulator(seed=99).random.stream("x").random()
        assert a == b
