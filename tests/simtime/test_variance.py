"""Tests for repro.simtime.variance."""

import random

import pytest

from repro.simtime.variance import (
    GaussianNoise,
    LognormalNoise,
    NO_NOISE,
    NO_STRAGGLERS,
    StragglerModel,
)


class TestGaussianNoise:
    def test_zero_sigma_is_identity(self):
        rng = random.Random(1)
        assert GaussianNoise(sigma=0.0).factor(rng) == 1.0

    def test_factor_respects_floor(self):
        noise = GaussianNoise(sigma=10.0, floor=0.5)
        rng = random.Random(1)
        assert all(noise.factor(rng) >= 0.5 for _ in range(200))

    def test_apply_scales(self):
        rng = random.Random(2)
        noise = GaussianNoise(sigma=0.1)
        factor_rng = random.Random(2)
        assert noise.apply(10.0, rng) == pytest.approx(
            10.0 * noise.factor(factor_rng)
        )


class TestLognormalNoise:
    def test_zero_sigma_is_identity(self):
        assert LognormalNoise(sigma=0.0).factor(random.Random(1)) == 1.0

    def test_factors_positive(self):
        noise = LognormalNoise(sigma=0.5)
        rng = random.Random(3)
        assert all(noise.factor(rng) > 0 for _ in range(500))

    def test_median_near_one(self):
        noise = LognormalNoise(sigma=0.2)
        rng = random.Random(4)
        draws = sorted(noise.factor(rng) for _ in range(2001))
        assert draws[1000] == pytest.approx(1.0, abs=0.05)


class TestStragglerModel:
    def test_zero_probability_never_delays(self):
        model = StragglerModel(probability=0.0, scale=5.0)
        rng = random.Random(5)
        assert all(model.delay(rng) == 0.0 for _ in range(100))

    def test_delays_bounded_by_cap(self):
        model = StragglerModel(probability=1.0, scale=2.0, shape=1.1, cap=10.0)
        rng = random.Random(6)
        assert all(model.delay(rng) <= 10.0 for _ in range(500))

    def test_delay_at_least_scale_when_hit(self):
        model = StragglerModel(probability=1.0, scale=2.0)
        rng = random.Random(7)
        assert all(model.delay(rng) >= 2.0 for _ in range(100))

    def test_frequency_matches_probability(self):
        model = StragglerModel(probability=0.3, scale=1.0)
        rng = random.Random(8)
        hits = sum(1 for _ in range(5000) if model.delay(rng) > 0)
        assert 0.25 < hits / 5000 < 0.35

    def test_apply_adds(self):
        model = StragglerModel(probability=1.0, scale=1.0, cap=3.0)
        rng = random.Random(9)
        assert model.apply(10.0, rng) > 10.0


class TestSentinels:
    def test_no_noise(self):
        assert NO_NOISE.factor(random.Random(0)) == 1.0

    def test_no_stragglers(self):
        assert NO_STRAGGLERS.delay(random.Random(0)) == 0.0
