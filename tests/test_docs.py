"""Documentation integrity: referenced paths exist, claims stay true."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent


def referenced_paths(text: str) -> set[str]:
    """Repo-relative paths mentioned in backticks within a document."""
    candidates = re.findall(r"`([A-Za-z0-9_./-]+\.(?:py|md))`", text)
    return {c for c in candidates if "/" in c and not c.startswith("http")}


class TestDocReferences:
    @pytest.mark.parametrize(
        "doc",
        ["README.md", "DESIGN.md", "docs/architecture.md", "docs/paper_mapping.md"],
    )
    def test_referenced_files_exist(self, doc):
        text = (ROOT / doc).read_text(encoding="utf-8")
        missing = [
            path
            for path in referenced_paths(text)
            if not (ROOT / path).exists() and not (ROOT / "src" / path).exists()
        ]
        assert not missing, f"{doc} references missing files: {missing}"

    def test_required_documents_present(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert (ROOT / name).exists(), name
            assert (ROOT / name).stat().st_size > 1_000, f"{name} looks empty"

    def test_experiments_records_full_scale(self):
        text = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        assert "1,000,001" in text
        assert "Figure 11" in text
        assert "Table III" in text

    def test_design_confirms_paper_identity(self):
        text = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
        assert "Paper identity confirmed" in text

    def test_examples_listed_in_readme_exist(self):
        text = (ROOT / "README.md").read_text(encoding="utf-8")
        for name in re.findall(r"`([a-z_]+\.py)`", text):
            assert (ROOT / "examples" / name).exists(), name


class TestPublicApiSurface:
    def test_top_level_packages_importable(self):
        import repro
        import repro.beam
        import repro.benchmark
        import repro.broker
        import repro.dataflow
        import repro.engines.apex
        import repro.engines.flink
        import repro.engines.spark
        import repro.simtime
        import repro.workloads
        import repro.yarn

        assert repro.__version__

    def test_all_exports_resolve(self):
        import repro.beam as beam_pkg
        import repro.benchmark as bench_pkg
        import repro.broker as broker_pkg
        import repro.simtime as simtime_pkg

        for module in (beam_pkg, bench_pkg, broker_pkg, simtime_pkg):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_public_classes_have_docstrings(self):
        import inspect

        import repro.beam as beam_pkg
        import repro.benchmark as bench_pkg
        import repro.broker as broker_pkg

        undocumented = []
        for module in (beam_pkg, bench_pkg, broker_pkg):
            for name in module.__all__:
                obj = getattr(module, name)
                if inspect.isclass(obj) and not inspect.getdoc(obj):
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, undocumented
