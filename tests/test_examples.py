"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; they must not rot.  Each is run
in-process via runpy (so coverage and import errors surface normally) with
its output captured and spot-checked.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None) -> None:
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "native Flink grep" in out
        assert "ApexRunner" in out

    def test_campaign_small(self, capsys):
        run_example("streambench_campaign.py", ["--records", "2000"])
        out = capsys.readouterr().out
        assert "Figure 11" in out
        assert "Table III" in out

    def test_execution_plans_and_profiling(self, capsys):
        run_example("execution_plans_and_profiling.py")
        out = capsys.readouterr().out
        assert "Figure 12" in out
        assert out.count("ParDoTranslation.RawParDo") >= 5
        assert "operator time share" in out

    def test_stateful_wordcount(self, capsys):
        run_example("stateful_wordcount.py")
        out = capsys.readouterr().out
        assert "native Flink" in out
        assert "REFUSED" in out

    def test_fault_tolerance(self, capsys):
        run_example("fault_tolerance.py")
        out = capsys.readouterr().out
        assert "outputs identical to the failure-free run? True" in out
        assert "duplicates" in out

    def test_chaos_pipeline(self, capsys):
        run_example("chaos_pipeline.py")
        out = capsys.readouterr().out
        assert "leadership moved" in out
        assert "(nothing lost)" in out
        assert "output count identical to clean run? True" in out

    def test_nexmark_auctions(self, capsys):
        run_example("nexmark_auctions.py")
        out = capsys.readouterr().out
        assert "Q1 currency conversion" in out
        assert "REFUSED" in out
        assert "hottest auctions" in out

    def test_predict_slowdowns(self, capsys):
        run_example("predict_slowdowns.py")
        out = capsys.readouterr().out
        assert "predicted slowdown factors" in out
        assert "validation" in out
