"""Cross-module integration tests: the whole stack working together.

The central correctness invariant of the reproduction: for every query,
every engine — native API or through the Beam layer — produces exactly the
same output records, and the broker-side measurement methodology yields
comparable execution times across all of them.
"""

import random

import pytest

import repro.beam as beam
from repro.beam.io import kafka
from repro.beam.runners import ApexRunner, DirectRunner, FlinkRunner, SparkRunner
from repro.benchmark import BenchmarkConfig, ResultCalculator, StreamBenchHarness
from repro.benchmark.queries import QUERIES
from repro.engines.apex import (
    ApexLauncher,
    DAG,
    FunctionOperator,
    KafkaSinglePortInputOperator,
    KafkaSinglePortOutputOperator,
)
from repro.engines.flink import (
    FlinkCluster,
    KafkaSink,
    KafkaSource,
    StreamExecutionEnvironment,
)
from repro.engines.spark import (
    KafkaUtils,
    SparkCluster,
    SparkConf,
    SparkContext,
    StreamingContext,
)
from repro.simtime import Simulator
from repro.workloads.aol import expected_grep_matches, generate_records
from repro.yarn import YarnCluster


def world(records=5_000, seed=77):
    from repro.benchmark import DataSender
    from repro.broker import AdminClient, BrokerCluster

    sim = Simulator(seed=seed)
    broker = BrokerCluster(sim)
    admin = AdminClient(broker)
    lines = generate_records(records, seed=seed)
    DataSender(broker, "in").send(lines)
    return sim, broker, admin, lines


def run_native(system, sim, broker, function, out_topic):
    if system == "flink":
        env = StreamExecutionEnvironment(FlinkCluster(sim))
        stream = env.add_source(KafkaSource(broker, "in"))
        if function is not None:
            stream = stream.transform_with(function)
        stream.add_sink(KafkaSink(broker, out_topic))
        return env.execute("q")
    if system == "spark":
        sc = SparkContext(SparkConf(), SparkCluster(sim))
        ssc = StreamingContext(sc)
        stream = KafkaUtils.create_direct_stream(ssc, broker, "in")
        if function is not None:
            stream = stream.transform_with(function)
        stream.write_to_kafka(broker, out_topic)
        job = ssc.run("q")
        sc.stop()
        return job
    dag = DAG("q")
    source = dag.add_operator("src", KafkaSinglePortInputOperator(broker, "in"))
    port = source.output
    if function is not None:
        op = dag.add_operator("fn", FunctionOperator(function))
        dag.add_stream("s1", port, op.input)
        port = op.output
    sink = dag.add_operator("snk", KafkaSinglePortOutputOperator(broker, out_topic))
    dag.add_stream("s2", port, sink.input)
    return ApexLauncher(YarnCluster(sim)).launch(dag)


class TestNativeOutputEquivalence:
    @pytest.mark.parametrize("query", ["identity", "projection", "grep"])
    def test_three_engines_identical_outputs(self, query):
        sim, broker, admin, lines = world()
        spec = QUERIES[query]
        outputs = {}
        for system in ("flink", "spark", "apex"):
            admin.recreate_topic("out")
            run_native(system, sim, broker, spec.make_function(random.Random(0)), "out")
            outputs[system] = broker.topic("out").partition(0).read_values(0)
        assert outputs["flink"] == outputs["spark"] == outputs["apex"]
        if query == "grep":
            assert len(outputs["flink"]) == expected_grep_matches(len(lines))

    def test_outputs_equal_reference_computation(self):
        sim, broker, admin, lines = world()
        spec = QUERIES["projection"]
        admin.recreate_topic("out")
        run_native("flink", sim, broker, spec.make_function(random.Random(0)), "out")
        assert broker.topic("out").partition(0).read_values(0) == [
            line.split("\t")[0] for line in lines
        ]


class TestBeamVersusNative:
    @pytest.mark.parametrize("system,make_runner", [
        ("flink", lambda sim: FlinkRunner(FlinkCluster(sim))),
        ("spark", lambda sim: SparkRunner(SparkCluster(sim))),
        ("apex", lambda sim: ApexRunner(YarnCluster(sim))),
    ])
    def test_beam_matches_native_outputs(self, system, make_runner):
        sim, broker, admin, lines = world()
        spec = QUERIES["grep"]
        admin.recreate_topic("out-native")
        run_native(system, sim, broker, spec.make_function(random.Random(0)), "out-native")
        admin.recreate_topic("out-beam")
        pipeline = beam.Pipeline(runner=make_runner(sim))
        pcoll = (
            pipeline
            | kafka.read(broker, "in").without_metadata()
            | beam.Values()
            | spec.make_beam_transform(random.Random(0))
        )
        pcoll | kafka.write(broker, "out-beam")
        pipeline.run()
        assert (
            broker.topic("out-beam").partition(0).read_values(0)
            == broker.topic("out-native").partition(0).read_values(0)
        )

    def test_direct_runner_is_the_oracle(self):
        sim, broker, admin, lines = world()
        admin.recreate_topic("out")
        pipeline = beam.Pipeline(runner=DirectRunner())
        (
            pipeline
            | kafka.read(broker, "in").without_metadata()
            | beam.Values()
            | beam.Filter(lambda line: "test" in line)
            | kafka.write(broker, "out")
        )
        pipeline.run()
        assert broker.topic("out").partition(0).read_values(0) == [
            line for line in lines if "test" in line
        ]


class TestMeasurementMethodology:
    def test_measurement_orders_systems_like_durations(self):
        """The broker-side measurement must preserve cross-system ordering:
        the paper's argument for its methodology."""
        sim, broker, admin, lines = world(records=20_000)
        spec = QUERIES["identity"]
        calculator = ResultCalculator(broker)
        measured = {}
        durations = {}
        for system in ("flink", "spark", "apex"):
            admin.recreate_topic("out")
            job = run_native(
                system, sim, broker, spec.make_function(random.Random(0)), "out"
            )
            measured[system] = calculator.measure("out").execution_time
            durations[system] = job.duration
        order_measured = sorted(measured, key=measured.get)
        order_duration = sorted(durations, key=durations.get)
        assert order_measured == order_duration

    def test_simulated_clock_strictly_monotonic_across_runs(self):
        sim, broker, admin, lines = world()
        spec = QUERIES["grep"]
        stamps = []
        for _ in range(3):
            admin.recreate_topic("out")
            run_native("flink", sim, broker, spec.make_function(random.Random(0)), "out")
            stamps.append(sim.now())
        assert stamps == sorted(stamps)
        assert stamps[0] < stamps[-1]


class TestHarnessAgainstManualRun:
    def test_harness_duration_matches_manual_execution(self):
        """The harness adds no hidden costs: running one setup manually on
        a fresh world with the same rng yields the pump-identical result."""
        config = BenchmarkConfig(
            records=2_000,
            runs=1,
            parallelisms=(1,),
            systems=("flink",),
            queries=("grep",),
            kinds=("native",),
        )
        record = StreamBenchHarness(config).run_setup("flink", "grep", "native", 1)[0]
        again = StreamBenchHarness(config).run_setup("flink", "grep", "native", 1)[0]
        assert record.duration == again.duration
        assert record.measured == again.measured
