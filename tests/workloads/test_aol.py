"""Tests for the synthetic AOL workload."""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.aol import (
    AolWorkload,
    FULL_SCALE_GREP_MATCHES,
    FULL_SCALE_RECORDS,
    GENERATOR_VERSION,
    GREP_NEEDLE,
    expected_grep_matches,
    generate_records,
    iter_record_chunks,
    parse_record,
)


class TestGeneration:
    def test_record_count(self):
        assert len(generate_records(500)) == 500

    def test_zero_records(self):
        assert generate_records(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            generate_records(-1)

    def test_deterministic_given_seed(self):
        assert generate_records(200, seed=5) == generate_records(200, seed=5)

    def test_different_seeds_differ(self):
        assert generate_records(200, seed=5) != generate_records(200, seed=6)

    def test_five_tab_separated_columns(self):
        for line in generate_records(300):
            assert len(line.split("\t")) == 5

    def test_parse_roundtrip(self):
        for line in generate_records(50):
            assert parse_record(line).line() == line

    def test_parse_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            parse_record("a\tb")

    def test_grep_matches_exact(self):
        lines = generate_records(10_000)
        actual = sum(1 for line in lines if GREP_NEEDLE in line)
        assert actual == expected_grep_matches(10_000)

    def test_full_scale_match_count_is_papers(self):
        assert expected_grep_matches(FULL_SCALE_RECORDS) == FULL_SCALE_GREP_MATCHES

    def test_matches_spread_not_clustered(self):
        lines = generate_records(10_000)
        positions = [i for i, line in enumerate(lines) if GREP_NEEDLE in line]
        assert positions[0] < 1_000
        assert positions[-1] > 9_000

    def test_rank_and_url_sometimes_empty(self):
        records = [parse_record(line) for line in generate_records(500)]
        with_click = sum(1 for r in records if r.click_url)
        assert 100 < with_click < 400
        for r in records:
            assert bool(r.item_rank) == bool(r.click_url)

    def test_query_times_shape(self):
        record = parse_record(generate_records(1)[0])
        assert record.query_time.startswith("2006-03-")
        assert len(record.query_time) == len("2006-03-01 07:17:12")


class TestChunkedGeneration:
    """The bulk generator is the same byte stream, chunked."""

    #: SHA-256 of "\n".join(lines) for generator version 1.  A change here
    #: means the generated workload changed: bump GENERATOR_VERSION (the
    #: disk cache keys entries by it) and re-derive these pins.
    GOLDEN_SHA256 = {
        (2_000, 2006): "db0f5a6ed7d719c49f86bfe186dc9c2c180b19c84b983b8a02eb7c3f4cddb3d5",
        (2_000, 7): "679fa7b341046657bfc6e08a9b296c43c1c7f62335131baa674899295dbf477c",
        (10_000, 2006): "974a53809244cbd4bdef380a4f7f586c0b45f8ba9857a1444d0e6176a7abe04b",
    }

    def test_generated_bytes_pinned(self):
        assert GENERATOR_VERSION == 1
        for (n, seed), expected in self.GOLDEN_SHA256.items():
            digest = hashlib.sha256(
                "\n".join(generate_records(n, seed)).encode("utf-8")
            ).hexdigest()
            assert digest == expected, (n, seed)

    @pytest.mark.parametrize("chunk_size", [1, 7, 999, 5_000, 100_000])
    def test_chunks_concatenate_to_flat_generation(self, chunk_size):
        chunks = list(iter_record_chunks(5_000, seed=13, chunk_size=chunk_size))
        assert all(len(c) <= chunk_size for c in chunks)
        flat = [line for chunk in chunks for line in chunk]
        assert flat == generate_records(5_000, seed=13)

    def test_zero_records_yields_nothing(self):
        assert list(iter_record_chunks(0)) == []

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            list(iter_record_chunks(10, chunk_size=0))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            list(iter_record_chunks(-1))


class TestWorkloadWrapper:
    def test_lazy_and_cached(self):
        workload = AolWorkload(100)
        assert workload._records is None
        first = workload.records
        assert workload.records is first

    def test_grep_matches_property(self):
        workload = AolWorkload(10_000)
        assert workload.grep_matches == expected_grep_matches(10_000)

    def test_verify_passes(self):
        AolWorkload(2_000).verify()

    def test_verify_samples_whole_stream(self):
        """A malformed record far beyond the first 100 lines is caught."""
        workload = AolWorkload(5_000)
        lines = list(workload.records)
        lines[4_999] = "no tabs at all"
        workload._records = lines
        with pytest.raises(ValueError):
            workload.verify()

    def test_verify_stride_covers_interior(self):
        workload = AolWorkload(5_000)
        lines = list(workload.records)
        lines[2_500] = "broken\tline"
        workload._records = lines
        with pytest.raises(ValueError):
            workload.verify(sample_stride=1)

    def test_verify_empty_workload(self):
        AolWorkload(0).verify()

    def test_verify_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            AolWorkload(100).verify(sample_stride=0)


class TestProperties:
    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=20, deadline=None)
    def test_match_count_exact_at_any_scale(self, n):
        lines = generate_records(n, seed=3)
        assert sum(1 for s in lines if GREP_NEEDLE in s) == expected_grep_matches(n)

    @given(st.integers(min_value=1, max_value=5_000))
    @settings(max_examples=20, deadline=None)
    def test_columns_always_five(self, n):
        lines = generate_records(n, seed=4)
        assert all(len(line.split("\t")) == 5 for line in lines)

    @given(st.integers(min_value=0, max_value=FULL_SCALE_RECORDS))
    def test_expected_matches_proportional(self, n):
        matches = expected_grep_matches(n)
        assert 0 <= matches <= n or n == 0
        assert matches == round(n * FULL_SCALE_GREP_MATCHES / FULL_SCALE_RECORDS)
