"""Tests for the versioned on-disk workload cache."""

from __future__ import annotations

import pytest

from repro.workloads import aol
from repro.workloads.cache import (
    WorkloadCache,
    clear_memo,
    ensure_disk_cached,
    load_workload,
)


@pytest.fixture(autouse=True)
def fresh_memo():
    """Each test sees an empty in-process memo."""
    clear_memo()
    yield
    clear_memo()


@pytest.fixture
def cache(tmp_path):
    """A disk cache in a temp directory with no size threshold."""
    return WorkloadCache(tmp_path / "workloads", min_records=0)


class TestRoundTrip:
    def test_load_equals_generation(self, cache):
        lines = load_workload(3_000, seed=11, cache=cache)
        assert lines == aol.generate_records(3_000, seed=11)
        clear_memo()
        assert load_workload(3_000, seed=11, cache=cache) == lines

    def test_entry_created_atomically(self, cache):
        load_workload(2_000, seed=11, cache=cache)
        entries = list(cache.directory.iterdir())
        assert [e.name for e in entries] == [cache.entry_path(11, 2_000).name]
        assert not any(e.name.endswith(".tmp") for e in entries)

    def test_empty_workload(self, cache):
        assert load_workload(0, seed=3, cache=cache) == []
        clear_memo()
        assert load_workload(0, seed=3, cache=cache) == []

    def test_keys_are_independent(self, cache):
        a = load_workload(1_000, seed=1, cache=cache)
        b = load_workload(1_000, seed=2, cache=cache)
        c = load_workload(1_500, seed=1, cache=cache)
        assert a != b
        assert len(c) == 1_500
        assert len(list(cache.directory.iterdir())) == 3

    def test_memo_shares_one_list(self, cache):
        first = load_workload(1_000, seed=1, cache=cache)
        assert load_workload(1_000, seed=1, cache=cache) is first


class TestCorruptionAndStaleness:
    def test_corrupted_payload_detected_and_regenerated(self, cache):
        reference = load_workload(2_000, seed=9, cache=cache)
        path = cache.entry_path(9, 2_000)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        clear_memo()

        assert cache.load(9, 2_000) is None
        assert not path.exists()  # the bad entry was dropped
        regenerated = load_workload(2_000, seed=9, cache=cache)
        assert regenerated == reference
        assert path.exists()  # ... and replaced by a valid one
        clear_memo()
        assert cache.load(9, 2_000) == reference

    def test_truncated_entry_is_a_miss(self, cache):
        load_workload(2_000, seed=9, cache=cache)
        path = cache.entry_path(9, 2_000)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        clear_memo()
        assert cache.load(9, 2_000) is None

    def test_stale_generator_version_is_a_miss(self, cache, monkeypatch):
        load_workload(2_000, seed=9, cache=cache)
        stale_path = cache.entry_path(9, 2_000)
        monkeypatch.setattr(aol, "GENERATOR_VERSION", aol.GENERATOR_VERSION + 1)
        # The new version keys a different path, so the old entry is
        # simply never consulted again.
        assert cache.entry_path(9, 2_000) != stale_path
        assert cache.load(9, 2_000) is None

    def test_edited_header_is_a_miss(self, cache):
        load_workload(2_000, seed=9, cache=cache)
        path = cache.entry_path(9, 2_000)
        data = path.read_bytes()
        path.write_bytes(data.replace(b"records=2000", b"records=2001", 1))
        clear_memo()
        assert cache.load(9, 2_000) is None

    def test_store_rejects_wrong_record_count(self, cache):
        with pytest.raises(ValueError):
            cache.store(1, 10, iter([["only", "three", "lines"]]))
        assert not any(
            e.name.endswith(".tmp") for e in cache.directory.iterdir()
        )


class TestTiering:
    def test_small_workloads_stay_memory_only(self, tmp_path, monkeypatch):
        directory = tmp_path / "disk"
        monkeypatch.setenv("REPRO_WORKLOAD_CACHE_DIR", str(directory))
        lines = load_workload(500, seed=4)  # default threshold is 100k
        assert lines == aol.generate_records(500, seed=4)
        assert not directory.exists()

    def test_disk_tier_can_be_disabled(self, tmp_path, monkeypatch):
        directory = tmp_path / "disk"
        monkeypatch.setenv("REPRO_WORKLOAD_CACHE_DIR", str(directory))
        monkeypatch.setenv("REPRO_WORKLOAD_CACHE_MIN", "100")
        monkeypatch.setenv("REPRO_WORKLOAD_CACHE", "0")
        load_workload(500, seed=4)
        assert not directory.exists()

    def test_threshold_env_engages_disk(self, tmp_path, monkeypatch):
        directory = tmp_path / "disk"
        monkeypatch.setenv("REPRO_WORKLOAD_CACHE_DIR", str(directory))
        monkeypatch.setenv("REPRO_WORKLOAD_CACHE_MIN", "100")
        load_workload(500, seed=4)
        assert directory.exists()
        assert WorkloadCache().load(4, 500) == aol.generate_records(500, seed=4)

    def test_ensure_disk_cached(self, cache):
        assert ensure_disk_cached(1_000, seed=6, cache=cache) == cache.entry_path(
            6, 1_000
        )
        # Idempotent, and serves the pre-seeded entry afterwards.
        assert ensure_disk_cached(1_000, seed=6, cache=cache).exists()
        assert cache.load(6, 1_000) == aol.generate_records(1_000, seed=6)

    def test_ensure_disk_cached_respects_threshold(self, tmp_path, monkeypatch):
        directory = tmp_path / "disk"
        monkeypatch.setenv("REPRO_WORKLOAD_CACHE_DIR", str(directory))
        assert ensure_disk_cached(500, seed=4) is None
        assert not directory.exists()

    def test_unwritable_directory_degrades_gracefully(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        cache = WorkloadCache(blocked / "sub", min_records=0)
        lines = load_workload(800, seed=2, cache=cache)
        assert lines == aol.generate_records(800, seed=2)


class TestWorkloadIntegration:
    def test_aol_workload_uses_memo(self):
        a = aol.AolWorkload(1_200, seed=8)
        b = aol.AolWorkload(1_200, seed=8)
        assert a.records is b.records

    def test_harness_workloads_share_one_list(self):
        from repro.benchmark import BenchmarkConfig, StreamBenchHarness

        config = BenchmarkConfig(records=1_200, runs=1)
        first = StreamBenchHarness(config)
        second = StreamBenchHarness(config)
        assert first.workload.records is second.workload.records
