"""Bit-identity of the slab-direct (columnar) workload generator.

The columnar plane is only admissible because its byte stream is exactly
``"\\n".join(generate_records(n, seed))`` — these tests pin that equality
for the compiled fast path *and* the pure-Python fallback, across sizes
and seeds, plus the structural contract of the offset column.
"""

from __future__ import annotations

import pytest

from repro.workloads import aol
from repro.workloads import columnar


def reference_blob(num_records: int, seed: int = 2006) -> bytes:
    return "\n".join(aol.generate_records(num_records, seed)).encode("ascii")


def assert_valid_starts(data: bytes, starts, lines: list[str]) -> None:
    assert len(starts) == len(lines)
    offset = 0
    for i, line in enumerate(lines):
        assert starts[i] == offset
        offset += len(line) + 1
    if lines:
        assert len(data) == offset - 1  # no trailing newline


class TestGenerateColumns:
    @pytest.mark.parametrize("num_records", [0, 1, 2, 17, 4_097])
    def test_bit_identical_to_reference(self, num_records):
        data, starts = columnar.generate_columns(num_records)
        assert bytes(data) == reference_blob(num_records)
        assert_valid_starts(data, starts, aol.generate_records(num_records))

    def test_bit_identical_at_20k(self):
        # Large enough to cross the C kernel's chunk/refill boundaries and
        # to contain many needle records interleaved with plain runs.
        data, starts = columnar.generate_columns(20_001)
        lines = aol.generate_records(20_001)
        assert bytes(data) == "\n".join(lines).encode("ascii")
        assert_valid_starts(data, starts, lines)

    @pytest.mark.parametrize("seed", [1, 11, 4242])
    def test_seeds_vary_and_match(self, seed):
        data, starts = columnar.generate_columns(512, seed)
        assert bytes(data) == reference_blob(512, seed)

    def test_python_fallback_matches_native(self):
        fast = columnar.generate_columns(3_000)
        slow_chunks = list(columnar._iter_columns_python(3_000, 2006, 1_000))
        assert bytes(fast[0]) == b"\n".join(data for data, _ in slow_chunks)
        offset = 0
        slow_starts = []
        for data, starts in slow_chunks:
            slow_starts.extend(value + offset for value in starts)
            offset += len(data) + 1
        assert list(fast[1]) == slow_starts

    def test_native_kill_switch(self, monkeypatch):
        monkeypatch.setenv(columnar.NATIVE_ENV, "0")
        columnar.reset_native_cache()
        try:
            assert not columnar.native_generator_available()
            data, _ = columnar.generate_columns(256)
            assert bytes(data) == reference_blob(256)
        finally:
            monkeypatch.undo()
            columnar.reset_native_cache()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            columnar.generate_columns(-1)

    def test_grep_matches_exact(self):
        data, _ = columnar.generate_columns(10_000)
        expected = aol.expected_grep_matches(10_000)
        assert bytes(data).count(aol.GREP_NEEDLE.encode()) >= expected
        lines = bytes(data).decode("ascii").split("\n")
        assert sum(1 for l in lines if aol.GREP_NEEDLE in l) == expected


class TestColumnarWorkload:
    def test_records_decode_lazily_and_match(self):
        workload = columnar.ColumnarWorkload.generate(4_500, seed=9)
        assert workload.records == aol.generate_records(4_500, seed=9)
        # The decoded list is cached on the shared slab.
        assert workload.records is workload.records

    def test_column_windows(self):
        workload = columnar.ColumnarWorkload.generate(5_000)
        column = workload.column()
        assert len(column) == 5_000
        view = column.view(10, 20)
        assert list(view) == workload.records[10:20]
        assert view[0] == workload.records[10]
        assert view[-1] == workload.records[19]

    def test_single_record_decode_before_materialise(self):
        workload = columnar.ColumnarWorkload.generate(4_096)
        column = workload.column()
        # Indexing decodes one line without materialising the list.
        line = column[7]
        assert line == aol.generate_records(4_096)[7]

    def test_slab_is_shared(self):
        workload = columnar.ColumnarWorkload.generate(4_200)
        assert workload.to_slab() is workload.column().slab
