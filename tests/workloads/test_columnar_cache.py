"""The memmap-backed columnar tier of the workload cache.

Round trips, corruption and staleness: a loaded entry must be
bit-identical to generation, and any invalid file — truncated, edited
offsets, foreign header — must count as a miss, be unlinked, and be
replaced by regeneration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import aol
from repro.workloads.cache import (
    WorkloadCache,
    clear_memo,
    ensure_columns_cached,
    load_columnar_workload,
)
from repro.workloads.columnar import generate_columns


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_memo()
    yield
    clear_memo()


@pytest.fixture
def cache(tmp_path):
    return WorkloadCache(tmp_path / "workloads", min_records=0)


class TestRoundTrip:
    def test_load_equals_generation(self, cache):
        workload = load_columnar_workload(3_000, seed=11, cache=cache)
        assert workload.records == aol.generate_records(3_000, seed=11)
        clear_memo()
        # Second load comes from the mmap'ed entry, not generation.
        warm = load_columnar_workload(3_000, seed=11, cache=cache)
        assert warm is not workload
        assert warm._mmap is not None
        assert bytes(warm.data) == bytes(workload.data)
        assert list(warm.starts) == list(workload.starts)
        assert warm.records == workload.records

    def test_memo_shares_one_workload(self, cache):
        first = load_columnar_workload(1_000, seed=1, cache=cache)
        assert load_columnar_workload(1_000, seed=1, cache=cache) is first

    def test_entry_created_atomically(self, cache):
        load_columnar_workload(2_000, seed=11, cache=cache)
        entries = list(cache.directory.iterdir())
        assert [e.name for e in entries] == [cache.columns_path(11, 2_000).name]
        assert not any(e.name.endswith(".tmp") for e in entries)

    def test_mmap_columns_are_zero_copy_views(self, cache):
        load_columnar_workload(2_500, seed=5, cache=cache)
        clear_memo()
        warm = load_columnar_workload(2_500, seed=5, cache=cache)
        assert isinstance(warm.data, memoryview)
        assert isinstance(warm.starts, np.ndarray)
        assert not warm.starts.flags.owndata


class TestCorruption:
    def _seed_entry(self, cache, n=1_500, seed=7):
        load_columnar_workload(n, seed=seed, cache=cache)
        clear_memo()
        return cache.columns_path(seed, n)

    def test_truncated_entry_regenerates(self, cache):
        path = self._seed_entry(cache)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        workload = load_columnar_workload(1_500, seed=7, cache=cache)
        assert workload.records == aol.generate_records(1_500, seed=7)
        # The invalid file was replaced by a fresh, valid entry.
        clear_memo()
        assert cache.load_columns(7, 1_500) is not None

    def test_corrupted_offsets_detected(self, cache):
        path = self._seed_entry(cache)
        blob = bytearray(path.read_bytes())
        header_len = blob.index(b"\n") + 1
        # Flip bytes inside the starts column: checksum must catch it.
        blob[header_len + 16] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert cache.load_columns(7, 1_500) is None
        assert not path.exists()

    def test_header_edit_detected(self, cache):
        path = self._seed_entry(cache)
        blob = path.read_bytes()
        path.write_bytes(blob.replace(b"seed=7", b"seed=8", 1))
        assert cache.load_columns(7, 1_500) is None
        assert not path.exists()

    def test_foreign_magic_detected(self, cache):
        path = self._seed_entry(cache)
        blob = path.read_bytes()
        path.write_bytes(b"not-a-columns-file\n" + blob)
        assert cache.load_columns(7, 1_500) is None
        assert not path.exists()


class TestStaleness:
    def test_version_bump_changes_file_name(self, cache, monkeypatch):
        old = cache.columns_path(2, 800)
        monkeypatch.setattr(aol, "GENERATOR_VERSION", aol.GENERATOR_VERSION + 1)
        assert cache.columns_path(2, 800) != old

    def test_stale_record_count_regenerates(self, cache):
        # A file claiming the right name but holding the wrong number of
        # records (e.g. renamed by hand) must be rejected and replaced.
        data, starts = generate_columns(900, seed=3)
        cache.store_columns(3, 900, data, starts)
        wrong = cache.columns_path(3, 1_000)
        cache.columns_path(3, 900).rename(wrong)
        workload = load_columnar_workload(1_000, seed=3, cache=cache)
        assert workload.num_records == 1_000
        assert workload.records == aol.generate_records(1_000, seed=3)
        clear_memo()
        assert cache.load_columns(3, 1_000) is not None


class TestEnsure:
    def test_ensure_columns_cached_creates_entry(self, cache):
        path = ensure_columns_cached(1_200, seed=6, cache=cache)
        assert path is not None and path.exists()
        clear_memo()
        workload = cache.load_columns(6, 1_200)
        assert workload is not None
        assert workload.records == aol.generate_records(1_200, seed=6)

    def test_ensure_is_idempotent(self, cache):
        first = ensure_columns_cached(1_200, seed=6, cache=cache)
        stamp = first.stat().st_mtime_ns
        assert ensure_columns_cached(1_200, seed=6, cache=cache) == first
        assert first.stat().st_mtime_ns == stamp
