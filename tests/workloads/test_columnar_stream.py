"""Chunk-streamed workload generation: identity, pins and re-adoption.

``iter_column_chunks`` is the scale-out plane's generator: it yields the
workload as O(chunk)-byte slab windows whose concatenation must be
**bit-identical** to :func:`generate_columns` — the RNG word stream runs
seamlessly across chunk boundaries, whatever the chunk size.  The golden
SHA-256 pins freeze the byte stream at 200k records so a generator change
that silently alters the workload (and therefore every benchmark number)
fails loudly.  The re-adoption tests cover the broker-side half of the
bounded-memory contract: a foreign-slab window arriving on a trimmed-empty
bounded log is adopted zero-copy instead of degrading to record lists.
"""

from __future__ import annotations

import hashlib
from array import array

import pytest

from repro.broker.log import PartitionLog
from repro.simtime import SimClock
from repro.workloads import columnar
from repro.workloads.columnar import generate_columns, iter_column_chunks

#: Frozen digests of the 200k-record workload (seed 2006), computed from
#: ``generate_columns`` — the stream must reproduce them byte for byte.
GOLDEN_RECORDS = 200_000
GOLDEN_DATA_SHA256 = (
    "b0b538e4c1d6f0e6e8be0a798e09df4dd706b704e33bfd9fa3b20ee520d641e9"
)
GOLDEN_STARTS_SHA256 = (
    "d80cec90329d8fde6fbdea5330a9cdf7efa05a7d3a32f2e8370ffe9b16683141"
)


def assemble(num_records: int, seed: int = 2006, chunk_records: int = 50_000):
    """Reassemble a chunk stream into (data, absolute starts)."""
    parts: list[bytes] = []
    starts = array("q")
    offset = 0
    for data, chunk_starts in iter_column_chunks(
        num_records, seed, chunk_records=chunk_records
    ):
        starts.extend(s + offset for s in chunk_starts)
        parts.append(data)
        offset += len(data) + 1
    return b"\n".join(parts), starts


class TestGoldenPins:
    @pytest.fixture(scope="class")
    def generated(self):
        return generate_columns(GOLDEN_RECORDS)

    def test_generate_columns_matches_pinned_digests(self, generated):
        data, starts = generated
        assert hashlib.sha256(bytes(data)).hexdigest() == GOLDEN_DATA_SHA256
        raw = starts.tobytes() if hasattr(starts, "tobytes") else bytes(starts)
        assert hashlib.sha256(raw).hexdigest() == GOLDEN_STARTS_SHA256

    def test_chunk_stream_matches_pinned_digest(self, generated):
        data, starts = assemble(GOLDEN_RECORDS, chunk_records=33_333)
        assert hashlib.sha256(data).hexdigest() == GOLDEN_DATA_SHA256
        assert hashlib.sha256(starts.tobytes()).hexdigest() == GOLDEN_STARTS_SHA256
        assert bytes(generated[0]) == data


class TestChunkBoundaries:
    """The stream is chunk-size-invariant: any split, same bytes."""

    @pytest.mark.parametrize("chunk_records", [1, 7, 999, 2_337, 10_000])
    def test_any_chunk_size_reassembles_identically(self, chunk_records):
        reference_data, reference_starts = generate_columns(2_337)
        data, starts = assemble(2_337, chunk_records=chunk_records)
        assert data == bytes(reference_data)
        assert list(starts) == list(reference_starts)

    def test_chunk_starts_are_chunk_relative(self):
        for data, starts in iter_column_chunks(3_000, chunk_records=1_000):
            assert starts[0] == 0
            assert len(data) > int(starts[-1])

    def test_zero_records_yields_nothing(self):
        assert list(iter_column_chunks(0)) == []

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError, match="num_records"):
            list(iter_column_chunks(-1))
        with pytest.raises(ValueError, match="chunk_records"):
            list(iter_column_chunks(10, chunk_records=0))


class TestPythonFallbackStream:
    def test_python_stream_matches_public_stream(self):
        """The pure-Python chunk iterator yields the identical stream."""
        chunks = list(columnar._iter_columns_python(2_000, 2006, 700))
        native = list(iter_column_chunks(2_000, chunk_records=700))
        assert [c[0] for c in chunks] == [bytes(c[0]) for c in native]
        assert [list(c[1]) for c in chunks] == [list(c[1]) for c in native]


@pytest.fixture
def bounded_log():
    return PartitionLog("t", 0, SimClock(), max_queue=1_000)


def chunk_column(num_records: int, seed: int = 2006):
    """One generated chunk wrapped as a SlabColumn (skips without numpy)."""
    kernels = pytest.importorskip("repro.dataflow.kernels")
    data, starts = generate_columns(num_records, seed)
    slab = kernels.slab_from_columns(data, starts)
    assert slab is not None
    return kernels.SlabColumn(slab)


class TestTrimmedLogReAdoption:
    """The broker half of O(chunk) streaming: drained logs re-adopt."""

    def test_foreign_slab_readopts_after_trim_to_empty(self, bounded_log):
        from repro.dataflow.kernels import SlabColumn

        first = chunk_column(500, seed=2006)
        second = chunk_column(500, seed=2007)
        bounded_log.append_batch(first.view(0, 500))
        bounded_log.mark_consumed(bounded_log.end_offset)  # trims empty
        bounded_log.append_batch(second.view(0, 500))
        # A fresh zero-copy window over the *new* chunk's slab — not a
        # materialised list of the old one.
        assert type(bounded_log._values) is SlabColumn
        assert bounded_log._values.slab is second.slab
        assert bounded_log.read_values(bounded_log.start_offset) == second[0:500]

    def test_readoption_does_not_decode_the_old_slab(self, bounded_log):
        first = chunk_column(500, seed=2006)
        second = chunk_column(500, seed=2007)
        bounded_log.append_batch(first.view(0, 500))
        bounded_log.mark_consumed(bounded_log.end_offset)
        bounded_log.append_batch(second.view(0, 500))
        # Degrading would have split the old slab's text into a record
        # list; re-adoption must leave it untouched.
        assert first.slab.records is None

    def test_partial_trim_still_degrades_on_foreign_slab(self, bounded_log):
        """Only a *fully* drained log may re-adopt — data must survive."""
        first = chunk_column(500, seed=2006)
        second = chunk_column(500, seed=2007)
        bounded_log.append_batch(first.view(0, 500))
        bounded_log.mark_consumed(bounded_log.end_offset - 100)
        bounded_log.append_batch(second.view(0, 500))
        assert type(bounded_log._values) is list
        assert (
            bounded_log.read_values(bounded_log.start_offset)
            == first[400:500] + second[0:500]
        )

    def test_streamed_chunks_stay_bounded(self, bounded_log):
        """Chunk in, drain, chunk in: depth never exceeds one chunk."""
        from repro.dataflow.kernels import SlabColumn

        for seed in (2006, 2007, 2008):
            column = chunk_column(1_000, seed=seed)
            for start in range(0, 1_000, 250):
                bounded_log.append_batch(column.view(start, start + 250))
            assert bounded_log.queue_depth() == 1_000
            assert type(bounded_log._values) is SlabColumn
            bounded_log.mark_consumed(bounded_log.end_offset)
            assert bounded_log.queue_depth() == 0
        assert bounded_log.end_offset == 3_000
