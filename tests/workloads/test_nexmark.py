"""Tests for the NEXMark workload and queries."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.nexmark import (
    Auction,
    Bid,
    NexmarkGenerator,
    Person,
    USD_TO_EUR,
    decode_event,
    encode_event,
)
from repro.workloads.nexmark_queries import (
    Q2_AUCTION_MODULUS,
    Q3_STATES,
    q1_currency_conversion,
    q2_selection,
    q3_local_item_suggestion,
    q4_category_average,
)


@pytest.fixture(scope="module")
def events():
    return NexmarkGenerator(5_000, seed=3).event_list()


class TestGenerator:
    def test_count(self, events):
        assert len(events) == 5_000

    def test_deterministic(self):
        a = NexmarkGenerator(500, seed=9).event_list()
        b = NexmarkGenerator(500, seed=9).event_list()
        assert a == b

    def test_proportions_roughly_1_3_46(self, events):
        persons = sum(1 for e in events if isinstance(e, Person))
        auctions = sum(1 for e in events if isinstance(e, Auction))
        bids = sum(1 for e in events if isinstance(e, Bid))
        assert persons == pytest.approx(len(events) * 1 / 50, rel=0.2)
        assert auctions == pytest.approx(len(events) * 3 / 50, rel=0.2)
        assert bids == pytest.approx(len(events) * 46 / 50, rel=0.05)

    def test_event_times_monotonic(self, events):
        stamps = [e.date_time for e in events]
        assert stamps == sorted(stamps)

    def test_referential_integrity(self, events):
        person_ids = set()
        auction_ids = set()
        for event in events:
            if isinstance(event, Person):
                person_ids.add(event.person_id)
            elif isinstance(event, Auction):
                assert event.seller in person_ids
                auction_ids.add(event.auction_id)
            else:
                assert event.auction in auction_ids
                assert event.bidder in person_ids

    def test_dense_ids(self, events):
        person_ids = sorted(e.person_id for e in events if isinstance(e, Person))
        assert person_ids == list(range(len(person_ids)))

    def test_auction_economics(self, events):
        for auction in (e for e in events if isinstance(e, Auction)):
            assert auction.reserve >= auction.initial_bid
            assert auction.expires > auction.date_time

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            NexmarkGenerator(-1)

    def test_wire_roundtrip(self, events):
        for event in events[:500]:
            assert decode_event(encode_event(event)) == event

    def test_decode_unknown_tag(self):
        with pytest.raises(ValueError):
            decode_event("X\t1")


class TestQueries:
    def test_q1_converts_only_bids(self, events):
        q1 = q1_currency_conversion()
        out = [r for e in events for r in q1.process(e)]
        bids = [e for e in events if isinstance(e, Bid)]
        assert len(out) == len(bids)
        for converted, original in zip(out, bids):
            assert converted.price == round(original.price * USD_TO_EUR)
            assert converted.auction == original.auction

    def test_q2_selects_matching_auctions(self, events):
        q2 = q2_selection()
        out = [r for e in events for r in q2.process(e)]
        assert all(isinstance(r, Bid) for r in out)
        assert all(r.auction % Q2_AUCTION_MODULUS == 0 for r in out)
        expected = [
            e
            for e in events
            if isinstance(e, Bid) and e.auction % Q2_AUCTION_MODULUS == 0
        ]
        assert out == expected

    def test_q3_joins_sellers_in_target_states(self, events):
        q3 = q3_local_item_suggestion()
        q3.open()
        out = [r for e in events for r in q3.process(e)]
        persons = {e.person_id: e for e in events if isinstance(e, Person)}
        expected = [
            (persons[a.seller].name, persons[a.seller].city, persons[a.seller].state, a.auction_id)
            for a in events
            if isinstance(a, Auction) and persons[a.seller].state in Q3_STATES
        ]
        assert out == expected

    def test_q3_snapshot_restore(self, events):
        q3 = q3_local_item_suggestion()
        q3.open()
        half = len(events) // 2
        for event in events[:half]:
            list(q3.process(event))
        snapshot = q3.snapshot()
        first_half_out = [r for e in events[half:] for r in q3.process(e)]
        q3.restore(snapshot)
        replay_out = [r for e in events[half:] for r in q3.process(e)]
        assert first_half_out == replay_out

    def test_q4_running_category_means(self, events):
        q4 = q4_category_average()
        q4.open()
        out = [r for e in events for r in q4.process(e)]
        assert out, "q4 produced no rows"
        # recompute final means independently
        categories = {
            a.auction_id: a.category for a in events if isinstance(a, Auction)
        }
        sums: dict[int, float] = {}
        counts: dict[int, int] = {}
        finals: dict[int, float] = {}
        for bid in (e for e in events if isinstance(e, Bid)):
            category = categories[bid.auction]
            sums[category] = sums.get(category, 0.0) + bid.price
            counts[category] = counts.get(category, 0) + 1
            finals[category] = sums[category] / counts[category]
        last_seen: dict[int, float] = {}
        for category, mean in out:
            last_seen[category] = mean
        assert last_seen == pytest.approx(finals)

    @given(st.integers(min_value=0, max_value=2_000))
    @settings(max_examples=15, deadline=None)
    def test_generator_any_size_consistent(self, n):
        events = NexmarkGenerator(n, seed=1).event_list()
        assert len(events) == n
        if n:
            assert isinstance(events[0], Person)
