"""NEXMark queries running on the engines and through Beam."""

import pytest

import repro.beam as beam
from repro.beam.errors import UnsupportedFeatureError
from repro.beam.runners import ApexRunner, DirectRunner, FlinkRunner, SparkRunner
from repro.engines.flink import CollectSink, FlinkCluster, StreamExecutionEnvironment
from repro.engines.spark import SparkCluster, SparkConf, SparkContext, StreamingContext
from repro.simtime import Simulator
from repro.workloads.nexmark import Bid, NexmarkGenerator
from repro.workloads.nexmark_queries import (
    beam_q1,
    beam_q2,
    beam_q3,
    beam_q5_hot_items,
    q1_currency_conversion,
    q2_selection,
    q3_local_item_suggestion,
)


@pytest.fixture(scope="module")
def events():
    return NexmarkGenerator(3_000, seed=4).event_list()


def reference(events, function):
    function.open()
    return [r for e in events for r in function.process(e)]


class TestNativeEngines:
    def test_q1_on_flink(self, events):
        env = StreamExecutionEnvironment(FlinkCluster(Simulator(seed=1)))
        sink = CollectSink()
        env.from_collection(events).transform_with(q1_currency_conversion()).add_sink(sink)
        env.execute("q1")
        assert sink.values == reference(events, q1_currency_conversion())

    def test_q2_on_spark(self, events):
        sc = SparkContext(SparkConf(), SparkCluster(Simulator(seed=1)))
        ssc = StreamingContext(sc)
        bucket = []
        ssc.queue_stream(events).transform_with(q2_selection()).collect_into(bucket)
        ssc.run("q2")
        assert bucket == reference(events, q2_selection())

    def test_q3_on_flink_stateful(self, events):
        env = StreamExecutionEnvironment(FlinkCluster(Simulator(seed=1)))
        sink = CollectSink()
        env.from_collection(events).transform_with(
            q3_local_item_suggestion()
        ).add_sink(sink)
        env.execute("q3")
        assert sink.values == reference(events, q3_local_item_suggestion())


class TestBeamRunners:
    def test_q1_same_output_on_flink_and_apex(self, events):
        from repro.yarn import YarnCluster

        expected = reference(events, q1_currency_conversion())
        sim = Simulator(seed=2)
        for runner in (
            DirectRunner(),
            FlinkRunner(FlinkCluster(sim)),
            SparkRunner(SparkCluster(sim)),
            ApexRunner(YarnCluster(sim)),
        ):
            pipeline = beam.Pipeline(runner=runner)
            pcoll = pipeline | beam.Create(events) | beam_q1()
            result = pipeline.run()
            if isinstance(runner, DirectRunner):
                values = result.outputs[pcoll.producer.full_label]
            else:
                values = runner.collected
            assert values == expected, type(runner).__name__

    def test_q2_beam_slower_than_native_on_flink(self, events):
        def native():
            sim = Simulator(seed=3)
            env = StreamExecutionEnvironment(FlinkCluster(sim))
            sink = CollectSink()
            env.from_collection(events).transform_with(q2_selection()).add_sink(sink)
            return env.execute("q2").base_duration

        def with_beam():
            sim = Simulator(seed=3)
            runner = FlinkRunner(FlinkCluster(sim))
            pipeline = beam.Pipeline(runner=runner)
            pipeline | beam.Create(events) | beam_q2()
            pipeline.run()
            return pipeline.result.job_result.base_duration

        assert with_beam() > 2 * native()

    def test_q3_refused_by_spark_runner(self, events):
        pipeline = beam.Pipeline(runner=SparkRunner(SparkCluster(Simulator(seed=2))))
        pipeline | beam.Create(events) | beam_q3()
        with pytest.raises(UnsupportedFeatureError):
            pipeline.run()

    def test_q5_hot_items_on_direct_runner(self, events):
        pipeline = beam.Pipeline(runner=DirectRunner())
        pcoll = pipeline | beam.Create(
            events, timestamps=[e.date_time for e in events]
        )
        for transform in beam_q5_hot_items(window_seconds=5.0):
            pcoll = pcoll | transform
        result = pipeline.run()
        counts = result.outputs[pcoll.producer.full_label]
        assert counts, "no windowed counts"
        total_counted = sum(count for _, count in counts)
        assert total_counted == sum(1 for e in events if isinstance(e, Bid))
        assert all(count >= 1 for _, count in counts)
