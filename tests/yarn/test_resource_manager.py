"""Tests for repro.yarn.resource_manager, node_manager and application."""

import pytest

from repro.simtime import Simulator
from repro.yarn import (
    ApplicationMaster,
    InsufficientResourcesError,
    NodeManager,
    Resource,
    ResourceManager,
    YarnApplicationState,
    YarnCluster,
)
from repro.yarn.containers import ContainerState
from repro.yarn.errors import UnknownApplicationError


class WorkerAM(ApplicationMaster):
    """Requests a fixed number of worker containers on start."""

    def __init__(self, name="app", workers=2, vcores=1):
        super().__init__(name)
        self.workers = workers
        self.vcores = vcores
        self.containers = []

    def on_start(self, rm):
        for index in range(self.workers):
            container = rm.allocate(Resource(self.vcores, 1024), role=f"w{index}")
            container.transition(ContainerState.RUNNING)
            self.containers.append(container)


@pytest.fixture
def sim():
    return Simulator(seed=3)


@pytest.fixture
def cluster(sim):
    return YarnCluster(sim, num_nodes=2, vcores_per_node=8)


class TestNodeManager:
    def test_accounting(self):
        node = NodeManager("n0", Resource(8, 8192))
        assert node.available == Resource(8, 8192)

    def test_heartbeat_records(self):
        node = NodeManager("n0", Resource(8, 8192))
        node.heartbeat(5.0)
        assert node.last_heartbeat == 5.0
        assert node.heartbeat_count == 1


class TestSubmission:
    def test_submit_runs_am_and_workers(self, cluster):
        am = WorkerAM(workers=3)
        report = cluster.submit(am)
        assert report.state is YarnApplicationState.RUNNING
        # AM container + 3 workers
        assert len(report.container_ids) == 4
        assert report.am_container_id is not None

    def test_submission_charges_time(self, sim, cluster):
        before = sim.now()
        cluster.submit(WorkerAM())
        assert sim.now() > before

    def test_resources_accounted(self, cluster):
        cluster.submit(WorkerAM(workers=3))
        used = cluster.resource_manager.total_capacity() - (
            cluster.resource_manager.available_resources()
        )
        assert used.vcores == 4  # AM + 3 workers, 1 vcore each

    def test_finish_releases_everything(self, cluster):
        report = cluster.submit(WorkerAM(workers=3))
        cluster.finish(report.app_id)
        assert (
            cluster.resource_manager.available_resources()
            == cluster.resource_manager.total_capacity()
        )
        assert (
            cluster.resource_manager.application_report(report.app_id).state
            is YarnApplicationState.FINISHED
        )

    def test_unknown_application(self, cluster):
        with pytest.raises(UnknownApplicationError):
            cluster.resource_manager.application_report("nope")

    def test_insufficient_resources(self, cluster):
        with pytest.raises(InsufficientResourcesError):
            cluster.submit(WorkerAM(workers=32))

    def test_oversized_container_rejected(self, cluster):
        am = WorkerAM(workers=1, vcores=100)
        with pytest.raises(InsufficientResourcesError):
            cluster.submit(am)

    def test_two_applications_coexist(self, cluster):
        r1 = cluster.submit(WorkerAM("a", workers=2))
        r2 = cluster.submit(WorkerAM("b", workers=2))
        assert r1.app_id != r2.app_id
        used = cluster.resource_manager.total_capacity() - (
            cluster.resource_manager.available_resources()
        )
        assert used.vcores == 6

    def test_allocation_spreads_across_nodes(self, cluster):
        am = WorkerAM(workers=4)
        cluster.submit(am)
        nodes = {c.node_id for c in am.containers}
        assert len(nodes) == 2

    def test_heartbeats_happen_during_allocation(self, cluster):
        cluster.submit(WorkerAM(workers=2))
        assert all(n.heartbeat_count > 0 for n in cluster.nodes)

    def test_heartbeat_all(self, sim, cluster):
        sim.charge(9.0)
        cluster.resource_manager.heartbeat_all()
        assert all(n.last_heartbeat == sim.now() for n in cluster.nodes)


class TestAmHandleIsolation:
    def test_am_cannot_release_foreign_container(self, cluster):
        from repro.yarn.application import ResourceManagerHandle
        from repro.yarn.errors import InvalidStateTransitionError

        am1 = WorkerAM("a", workers=1)
        am2 = WorkerAM("b", workers=1)
        r1 = cluster.submit(am1)
        cluster.submit(am2)
        handle = ResourceManagerHandle(cluster.resource_manager, r1.app_id)
        with pytest.raises(InvalidStateTransitionError):
            handle.release(am2.containers[0])
