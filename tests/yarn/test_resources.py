"""Tests for repro.yarn.resources and containers."""

import pytest

from repro.yarn.containers import Container, ContainerState
from repro.yarn.errors import InvalidStateTransitionError
from repro.yarn.resources import Resource


class TestResource:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Resource(-1, 0)

    def test_add(self):
        assert Resource(1, 100) + Resource(2, 200) == Resource(3, 300)

    def test_sub(self):
        assert Resource(3, 300) - Resource(1, 100) == Resource(2, 200)

    def test_sub_below_zero_rejected(self):
        with pytest.raises(ValueError):
            Resource(1, 100) - Resource(2, 0)

    def test_fits_within(self):
        assert Resource(1, 100).fits_within(Resource(2, 200))
        assert not Resource(3, 100).fits_within(Resource(2, 200))
        assert not Resource(1, 300).fits_within(Resource(2, 200))

    def test_str(self):
        assert str(Resource(4, 4096)) == "<4 vcores, 4096 MB>"


class TestContainerLifecycle:
    def make(self):
        return Container("c1", "node-0", Resource(1, 1024), "app1")

    def test_initial_state_allocated(self):
        assert self.make().state is ContainerState.ALLOCATED

    def test_allocated_to_running(self):
        c = self.make()
        c.transition(ContainerState.RUNNING)
        assert c.state is ContainerState.RUNNING

    def test_running_to_completed(self):
        c = self.make()
        c.transition(ContainerState.RUNNING)
        c.transition(ContainerState.COMPLETED)
        assert not c.is_live

    def test_allocated_to_completed_illegal(self):
        with pytest.raises(InvalidStateTransitionError):
            self.make().transition(ContainerState.COMPLETED)

    def test_completed_is_terminal(self):
        c = self.make()
        c.transition(ContainerState.RUNNING)
        c.transition(ContainerState.COMPLETED)
        with pytest.raises(InvalidStateTransitionError):
            c.transition(ContainerState.RUNNING)

    def test_kill_from_any_live_state(self):
        c1 = self.make()
        c1.transition(ContainerState.KILLED)
        c2 = self.make()
        c2.transition(ContainerState.RUNNING)
        c2.transition(ContainerState.KILLED)
        assert not c1.is_live and not c2.is_live

    def test_is_live(self):
        c = self.make()
        assert c.is_live
        c.transition(ContainerState.RUNNING)
        assert c.is_live
